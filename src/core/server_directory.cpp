#include "core/server_directory.hpp"

#include "gossip/state.hpp"

namespace ew::core {

bool ServerList::merge(const ServerEntry& e) {
  auto it = map_.find(e.server);
  if (it == map_.end()) {
    map_.emplace(e.server, e.heartbeat);
    return true;
  }
  if (e.heartbeat > it->second) {
    it->second = e.heartbeat;
    return true;
  }
  return false;
}

bool ServerList::merge(const ServerList& other) {
  bool changed = false;
  for (const auto& [server, beat] : other.map_) {
    changed |= merge(ServerEntry{server, beat});
  }
  return changed;
}

void ServerList::prune(std::uint64_t max_lag) {
  std::uint64_t newest = 0;
  for (const auto& [server, beat] : map_) newest = std::max(newest, beat);
  for (auto it = map_.begin(); it != map_.end();) {
    if (newest > it->second && newest - it->second > max_lag) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<ServerEntry> ServerList::entries() const {
  std::vector<ServerEntry> out;
  out.reserve(map_.size());
  for (const auto& [server, beat] : map_) out.push_back(ServerEntry{server, beat});
  return out;
}

std::vector<Endpoint> ServerList::servers() const {
  std::vector<Endpoint> out;
  out.reserve(map_.size());
  for (const auto& [server, beat] : map_) out.push_back(server);
  return out;
}

Bytes ServerList::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(map_.size()));
  for (const auto& [server, beat] : map_) {
    gossip::write_endpoint(w, server);
    w.u64(beat);
  }
  return w.take();
}

Result<ServerList> ServerList::deserialize(const Bytes& data) {
  Reader r(data);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > 100'000) return Error{Err::kProtocol, "server list too large"};
  ServerList out;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto ep = gossip::read_endpoint(r);
    if (!ep) return ep.error();
    auto beat = r.u64();
    if (!beat) return beat.error();
    out.map_[std::move(*ep)] = *beat;
  }
  return out;
}

int ServerList::compare(const Bytes& a, const Bytes& b) {
  const auto la = deserialize(a);
  const auto lb = deserialize(b);
  if (!la) return lb ? -1 : 0;
  if (!lb) return 1;
  bool a_novel = false;
  bool b_novel = false;
  for (const auto& [server, beat] : la->map_) {
    auto it = lb->map_.find(server);
    if (it == lb->map_.end() || beat > it->second) a_novel = true;
  }
  for (const auto& [server, beat] : lb->map_) {
    auto it = la->map_.find(server);
    if (it == la->map_.end() || beat > it->second) b_novel = true;
  }
  if (a_novel && !b_novel) return 1;
  if (b_novel && !a_novel) return -1;
  if (!a_novel && !b_novel) return 0;
  // Mutual novelty: no true order exists, but the comparator must still be
  // a total, antisymmetric order or the exchange deadlocks (two one-entry
  // lists with equal heartbeats would both read "equally fresh" and never
  // propagate). Heartbeat mass first, then content bytes; merge-on-apply at
  // every holder re-unions whatever the "loser" knew.
  std::uint64_t sa = 0, sb = 0;
  for (const auto& [server, beat] : la->map_) sa += beat;
  for (const auto& [server, beat] : lb->map_) sb += beat;
  if (sa != sb) return sa > sb ? 1 : -1;
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

Bytes ServerList::merge_blobs(const Bytes& a, const Bytes& b) {
  auto la = deserialize(a);
  auto lb = deserialize(b);
  if (!la) return lb ? b : Bytes{};
  if (!lb) return a;
  la->merge(*lb);
  return la->serialize();
}

void ServerDirectoryModule::register_comparator(
    gossip::ComparatorRegistry& registry) {
  registry.register_comparator(statetype::kServerList, &ServerList::compare);
  // The directory is a per-server fact union, not a single-writer record:
  // every holder (gossip StateStore included) must re-union on conflict.
  // Whole-blob LWW here loses the freshest heartbeat known to exactly one
  // side each exchange, which kept live peers aging out of the directory.
  registry.register_merger(statetype::kServerList, &ServerList::merge_blobs);
}

Bytes ServerDirectoryModule::state() const { return list_.serialize(); }

void ServerDirectoryModule::apply(const Bytes& blob) {
  auto incoming = ServerList::deserialize(blob);
  if (!incoming) return;
  list_.merge(*incoming);
}

void ServerDirectoryModule::attach(ServiceContext& ctx) {
  self_ = ctx.self();
  list_.merge(ServerEntry{self_, ++beat_});
  ctx.expose_state(statetype::kServerList,
                   gossip::SyncClient::StateHandlers{
                       [this] { return state(); },
                       [this](const Bytes& b) { apply(b); },
                   });
  ctx.handle(msgtype::kDirectoryQuery,
             [this](const IncomingMessage&, Responder r) {
               r.ok(list_.serialize());
             });
  ctx.every(opts_.heartbeat_period, [this] {
    list_.merge(ServerEntry{self_, ++beat_});
    list_.prune(opts_.stale_after);
  });
}

}  // namespace ew::core
