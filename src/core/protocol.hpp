// Application-service wire protocol (paper Figure 1).
//
// Message types and codecs for the run-time management services the Ramsey
// application is built from: scheduling servers ("S"), persistent state
// managers ("P"), logging servers ("L"), plus the simulated-infrastructure
// control services (GRAM/GASS/MDS, NetSolve agent, Legion translator).
// Gossip/clique types live in gossip/protocol.hpp (0x01xx block).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "gossip/protocol.hpp"
#include "net/packet.hpp"
#include "ramsey/workunit.hpp"

namespace ew::core {

namespace msgtype {
// Scheduler. All four request payloads open with the shared versioned
// envelope (u8 version, u16 kind); every reply is a DirectiveBatch.
constexpr MsgType kSchedRegister = 0x0201;  // client hello -> directive batch
// RETIRED: 0x0202 was the per-unit kSchedReport shim (batch-of-1 routing).
// The constant is kept so the id is never reassigned; the scheduler no
// longer registers a handler, so frames sent at it are rejected as
// unhandled. Clients send kSchedReportBatch.
constexpr MsgType kSchedReport = 0x0202;
constexpr MsgType kSchedReportBatch = 0x0203;     // many reports -> directives
constexpr MsgType kSchedDirectiveBatch = 0x0204;  // reply envelope kind
// Persistent state manager.
constexpr MsgType kStateStore = 0x0210;
constexpr MsgType kStateFetch = 0x0211;
// Logging service (one-way).
constexpr MsgType kLogRecord = 0x0220;
constexpr MsgType kMetricsSnapshot = 0x0221;  // obs registry snapshot (JSON)
// Simulated Globus services (Section 5.2).
constexpr MsgType kGramSubmit = 0x0230;
constexpr MsgType kGramAuth = 0x0231;
constexpr MsgType kGassFetch = 0x0232;
constexpr MsgType kMdsQuery = 0x0233;
// Simulated NetSolve (Section 5.7).
constexpr MsgType kNetSolveRegister = 0x0240;
constexpr MsgType kNetSolveRequest = 0x0241;
// Legion translator envelope (Section 5.3).
constexpr MsgType kTranslate = 0x0250;
}  // namespace msgtype

// Gossip-synchronized state object types (Section 3.1.2's state classes).
namespace statetype {
// Persistent: the best (lowest-energy) coloring found so far.
constexpr MsgType kBestGraph = 0x0301;
// Volatile-but-replicated: "the up-to-date list of active servers".
constexpr MsgType kServerList = 0x0302;
}  // namespace statetype

/// Infrastructure labels (paper Figures 3-4 series).
enum class Infra : std::uint8_t {
  kUnix = 0,
  kGlobus = 1,
  kLegion = 2,
  kCondor = 3,
  kNT = 4,
  kJava = 5,
  kNetSolve = 6,
};
constexpr int kInfraCount = 7;
const char* infra_name(Infra i);

/// Wire version of the scheduler message family. v2 added the versioned
/// envelope itself, batched reports/directives, and multi-unit leases; v1
/// (headerless per-unit encoding) is no longer decoded.
constexpr std::uint8_t kSchedWireVersion = 2;

/// Ceiling on any list carried by a scheduler batch message. Combined with
/// the per-element minimum-size check this bounds decoder allocation long
/// before the 16 MiB frame cap would.
constexpr std::uint32_t kMaxSchedBatch = 65'536;

/// Envelope helpers shared by every scheduler payload: u8 version (1 ..
/// kSchedWireVersion accepted) + u16 message kind (must match the MsgType
/// the payload travels under, so a frame replayed at the wrong type fails
/// decode instead of being misinterpreted).
void write_sched_header(Writer& w, MsgType kind);
Result<std::uint8_t> read_sched_header(Reader& r, MsgType kind);

/// Client identification sent with kSchedRegister.
struct ClientHello {
  Endpoint client;
  Infra infra = Infra::kUnix;
  std::string host;
  std::uint32_t want_units = 1;  // lease size the client asks to hold

  [[nodiscard]] Bytes serialize() const;
  static Result<ClientHello> deserialize(const Bytes& data);
};

/// Batched progress reports: one hedged call carries every unit the client
/// touched this quantum. Carries the reporting client's own contact address
/// because the transport-level sender may be an intermediary (the Legion
/// translator object forwards its components' reports, Section 5.3). `seq`
/// is a per-client monotone sequence number; the scheduler caches the last
/// reply per client and replays it on a duplicate seq, which makes the
/// batch safe to retry and hedge (the pool mutations are applied exactly
/// once). seq 0 opts out of the dedupe cache.
struct ReportBatch {
  Endpoint client;
  std::uint64_t seq = 0;
  std::uint32_t want_units = 1;  // lease size to top back up to
  std::vector<ramsey::WorkReport> reports;

  [[nodiscard]] Bytes serialize() const;
  static Result<ReportBatch> deserialize(const Bytes& data);
};

/// Scheduler reply to every register/report call: units the client must stop
/// working on (revoked: migrated away or retired) and new assignments. An
/// empty batch means "keep doing what you are doing".
struct DirectiveBatch {
  std::vector<std::uint64_t> revoke;
  std::vector<ramsey::WorkSpec> assign;

  [[nodiscard]] bool empty() const { return revoke.empty() && assign.empty(); }
  [[nodiscard]] Bytes serialize() const;
  static Result<DirectiveBatch> deserialize(const Bytes& data);
};

/// A performance record shipped to the logging service (Section 3.1.3:
/// scheduler-side information is "forwarded to a logging server so that it
/// can be recorded" before being discarded).
struct LogRecord {
  TimePoint when = 0;        // stamped by the reporter
  Endpoint client;
  Infra infra = Infra::kUnix;
  std::string host;
  std::uint64_t ops = 0;     // ops completed since the previous record
  std::uint64_t best_energy = 0;
  bool found = false;

  [[nodiscard]] Bytes serialize() const;
  static Result<LogRecord> deserialize(const Bytes& data);
};

/// A whole obs::Registry snapshot shipped off-host, the paper's "limit and
/// control the storage load" pattern applied to telemetry: components
/// periodically post their counters to the logging service instead of
/// growing them locally forever.
struct MetricsSnapshot {
  TimePoint when = 0;    // stamped by the reporter
  Endpoint source;       // the node whose registry this is
  std::string json;      // obs::snapshot_json() document

  [[nodiscard]] Bytes serialize() const;
  static Result<MetricsSnapshot> deserialize(const Bytes& data);
};

/// Persistent-state store request.
struct StoreRequest {
  std::string name;      // object name, e.g. "ramsey/best/17/4"
  Bytes blob;            // versioned object content

  [[nodiscard]] Bytes serialize() const;
  static Result<StoreRequest> deserialize(const Bytes& data);
};

}  // namespace ew::core
