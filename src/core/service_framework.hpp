// Application-specific service framework (paper Section 6).
//
// "We plan to exploit commonalities in the various service designs to
// provide an application-specific service framework or template.
// Programmers could then install control modules within the framework that
// would be automatically invoked by each server."
//
// Every SC98 service (scheduler, persistent state, logging, gossip client)
// repeated the same scaffolding: a Node, message handlers, periodic timers
// with cancellation discipline, forecast-driven time-outs around outbound
// calls, and Gossip participation for replicated state. ServiceFramework
// packages exactly that; a ServiceModule installs its message handlers,
// ticks and synchronized state through the ServiceContext and never touches
// the scaffolding again.
#pragma once

#include <memory>
#include <vector>

#include "forecast/timeout.hpp"
#include "gossip/sync_client.hpp"
#include "net/node.hpp"

namespace ew::core {

class ServiceFramework;

/// Facilities the framework hands to its modules. Owned by the framework
/// and valid for the framework's whole lifetime, so modules may keep the
/// reference they receive in attach(). Modules must not outlive their
/// framework.
class ServiceContext {
 public:
  [[nodiscard]] Node& node();
  [[nodiscard]] Executor& executor();
  [[nodiscard]] TimePoint now();
  [[nodiscard]] const Endpoint& self();

  /// Register a message handler (thin wrapper over Node::handle).
  void handle(MsgType type, Node::ServerHandler handler);

  /// Outbound request with dynamic benchmarking baked in: the time-out is
  /// forecast from this (destination, type) event's history and the
  /// round-trip outcome is fed back automatically (Section 2.2).
  void call(const Endpoint& to, MsgType type, Bytes payload,
            Node::CallCallback cb);

  /// Same, with explicit reliability knobs (retry/hedge/deadline).
  void call(const Endpoint& to, MsgType type, Bytes payload, CallOptions opts,
            Node::CallCallback cb);

  /// Periodic tick; automatically cancelled when the framework stops.
  void every(Duration period, std::function<void()> fn);

  /// One-shot timer; automatically cancelled when the framework stops.
  void after(Duration delay, std::function<void()> fn);

  /// Expose a synchronized state object through the Gossip service
  /// (requires the framework to have been built with gossip endpoints).
  void expose_state(MsgType type, gossip::SyncClient::StateHandlers handlers);

 private:
  friend class ServiceFramework;
  explicit ServiceContext(ServiceFramework& fw) : fw_(fw) {}
  ServiceFramework& fw_;
};

/// A control module installed into the framework.
class ServiceModule {
 public:
  virtual ~ServiceModule() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Install handlers/ticks/state. Called once, at framework start.
  virtual void attach(ServiceContext& ctx) = 0;
  /// Framework stopping; timers are already cancelled.
  virtual void detach() {}
};

class ServiceFramework {
 public:
  /// A framework without Gossip participation (expose_state will reject).
  ServiceFramework(Executor& exec, Transport& transport, Endpoint self);
  /// A framework whose modules may expose synchronized state.
  ServiceFramework(Executor& exec, Transport& transport, Endpoint self,
                   std::vector<Endpoint> gossips,
                   const gossip::ComparatorRegistry& comparators);
  ~ServiceFramework();
  ServiceFramework(const ServiceFramework&) = delete;
  ServiceFramework& operator=(const ServiceFramework&) = delete;

  /// Install a module. Must be called before start().
  void install(std::unique_ptr<ServiceModule> module);

  /// Bind the node, start gossip registration (if any), attach all modules.
  Status start();
  /// Cancel timers, detach modules (reverse order), unbind.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Node& node() { return node_; }
  [[nodiscard]] AdaptiveTimeout& timeouts() {
    return node_.call_policy().timeouts();
  }
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }

 private:
  friend class ServiceContext;
  void tick_loop(std::size_t slot);

  Executor& exec_;
  Node node_;
  std::unique_ptr<gossip::SyncClient> sync_;
  std::vector<std::unique_ptr<ServiceModule>> modules_;
  struct Tick {
    Duration period = 0;
    std::function<void()> fn;
    TimerId timer = kInvalidTimer;
  };
  std::vector<Tick> ticks_;
  std::vector<TimerId> one_shots_;
  bool running_ = false;
  bool gossip_enabled_ = false;
  ServiceContext ctx_{*this};
};

}  // namespace ew::core
