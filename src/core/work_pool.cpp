#include "core/work_pool.hpp"

#include <algorithm>
#include <vector>

namespace ew::core {

WorkPool::WorkPool(Options opts) : opts_(opts) {}

ramsey::WorkSpec WorkPool::spec_for(std::uint64_t id, const Unit& u) const {
  ramsey::WorkSpec s;
  s.unit_id = id;
  s.n = opts_.n;
  s.k = opts_.k;
  s.kind = u.kind;
  s.seed = opts_.seed_base * 0x9e3779b9ULL + id;
  s.report_ops = opts_.report_ops;
  if (!u.resume.empty()) {
    auto g = ramsey::ColoredGraph::deserialize(u.resume);
    if (g) s.resume = std::move(*g);
  }
  return s;
}

ramsey::WorkSpec WorkPool::acquire() {
  // Most promising idle frontier unit first.
  std::uint64_t best_id = 0;
  std::uint64_t best_e = ~0ULL;
  for (const auto& [id, u] : units_) {
    if (u.assigned || u.resume.empty()) continue;
    if (u.best_energy < best_e) {
      best_e = u.best_energy;
      best_id = id;
    }
  }
  if (best_id != 0) {
    auto& u = units_[best_id];
    u.assigned = true;
    return spec_for(best_id, u);
  }
  const std::uint64_t id = next_id_++;
  Unit u;
  u.seed = opts_.seed_base + id;
  u.assigned = true;
  // Default: rotate heuristics so all three stay in play.
  u.kind = chooser_ ? chooser_(id) : static_cast<ramsey::HeuristicKind>(id % 3);
  auto [it, _] = units_.emplace(id, std::move(u));
  return spec_for(id, it->second);
}

std::optional<ramsey::WorkSpec> WorkPool::acquire_unit(std::uint64_t unit_id) {
  auto it = units_.find(unit_id);
  if (it == units_.end() || it->second.assigned) return std::nullopt;
  it->second.assigned = true;
  return spec_for(unit_id, it->second);
}

void WorkPool::report(const ramsey::WorkReport& rep) {
  auto it = units_.find(rep.unit_id);
  if (it == units_.end()) return;
  if (rep.best_energy < it->second.best_energy) {
    it->second.best_energy = rep.best_energy;
  }
  if (!rep.best_graph.empty()) it->second.resume = rep.best_graph;
}

void WorkPool::release(std::uint64_t unit_id) {
  auto it = units_.find(unit_id);
  if (it == units_.end()) return;
  it->second.assigned = false;
  if (it->second.resume.empty()) {
    // Never reported: nothing worth resuming; forget it entirely.
    units_.erase(it);
  } else {
    trim_idle();
  }
}

bool WorkPool::assigned(std::uint64_t unit_id) const {
  auto it = units_.find(unit_id);
  return it != units_.end() && it->second.assigned;
}

std::optional<ramsey::HeuristicKind> WorkPool::unit_kind(std::uint64_t unit_id) const {
  auto it = units_.find(unit_id);
  if (it == units_.end()) return std::nullopt;
  return it->second.kind;
}

std::optional<std::uint64_t> WorkPool::best_energy(std::uint64_t unit_id) const {
  auto it = units_.find(unit_id);
  if (it == units_.end() || it->second.best_energy == ~0ULL) return std::nullopt;
  return it->second.best_energy;
}

std::size_t WorkPool::idle_frontier_size() const {
  std::size_t n = 0;
  for (const auto& [id, u] : units_) {
    if (!u.assigned && !u.resume.empty()) ++n;
  }
  return n;
}

std::vector<std::uint64_t> WorkPool::assigned_units() const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, u] : units_) {
    if (u.assigned) out.push_back(id);
  }
  return out;
}

Bytes WorkPool::export_frontier() const {
  Writer w;
  std::uint32_t count = 0;
  for (const auto& [id, u] : units_) {
    if (!u.resume.empty()) ++count;
  }
  w.u32(count);
  for (const auto& [id, u] : units_) {
    if (u.resume.empty()) continue;
    w.u64(id);
    w.u64(u.seed);
    w.u8(static_cast<std::uint8_t>(u.kind));
    w.u64(u.best_energy);
    w.blob(u.resume);
  }
  return w.take();
}

std::size_t WorkPool::import_frontier(const Bytes& blob) {
  Reader r(blob);
  auto count = r.u32();
  if (!count || *count > 100'000) return 0;
  std::size_t imported = 0;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.u64();
    auto seed = r.u64();
    auto kind = r.u8();
    auto energy = r.u64();
    auto resume = r.blob();
    if (!id || !seed || !kind || !energy || !resume) break;
    if (*kind > static_cast<std::uint8_t>(ramsey::HeuristicKind::kAnneal)) continue;
    // Resume blobs must still decode as valid graphs of our order.
    auto g = ramsey::ColoredGraph::deserialize(*resume);
    if (!g || g->order() != opts_.n) continue;
    if (units_.contains(*id)) continue;  // live unit wins over checkpoint
    Unit u;
    u.seed = *seed;
    u.kind = static_cast<ramsey::HeuristicKind>(*kind);
    u.best_energy = *energy;
    u.resume = std::move(*resume);
    u.assigned = false;
    units_.emplace(*id, std::move(u));
    next_id_ = std::max(next_id_, *id + 1);
    ++imported;
  }
  trim_idle();
  return imported;
}

void WorkPool::trim_idle() {
  // Keep the bounded "file system footprint" discipline of Section 3.1.2:
  // drop the *worst* idle units beyond the cap.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> idle;  // (energy, id)
  for (const auto& [id, u] : units_) {
    if (!u.assigned && !u.resume.empty()) idle.emplace_back(u.best_energy, id);
  }
  if (idle.size() <= opts_.max_idle_frontier) return;
  std::sort(idle.begin(), idle.end());
  for (std::size_t i = opts_.max_idle_frontier; i < idle.size(); ++i) {
    units_.erase(idle[i].second);
  }
}

}  // namespace ew::core
