#include "core/work_pool.hpp"

#include <algorithm>

namespace ew::core {

WorkPool::WorkPool(Options opts) : opts_(opts) {
  if (opts_.id_stride == 0) opts_.id_stride = 1;
  if (opts_.first_id == 0) opts_.first_id = 1;
  next_id_ = opts_.first_id;
}

ramsey::WorkSpec WorkPool::spec_for(std::uint64_t id, const Unit& u) const {
  ramsey::WorkSpec s;
  s.unit_id = id;
  s.n = opts_.n;
  s.k = opts_.k;
  s.kind = u.kind;
  s.seed = opts_.seed_base * 0x9e3779b9ULL + id;
  s.report_ops = opts_.report_ops;
  if (!u.resume.empty()) {
    auto g = ramsey::ColoredGraph::deserialize(u.resume);
    if (g) s.resume = std::move(*g);
  }
  return s;
}

bool WorkPool::owns(std::uint64_t unit_id) const {
  return unit_id >= opts_.first_id &&
         (unit_id - opts_.first_id) % opts_.id_stride == 0;
}

ramsey::WorkSpec WorkPool::acquire() {
  // Most promising idle frontier unit first: lowest (energy, id).
  if (!idle_.empty()) {
    const auto [energy, id] = *idle_.begin();
    idle_.erase(idle_.begin());
    auto& u = units_[id];
    u.assigned = true;
    ++assigned_count_;
    return spec_for(id, u);
  }
  const std::uint64_t id = next_id_;
  next_id_ += opts_.id_stride;
  Unit u;
  u.seed = opts_.seed_base + id;
  u.assigned = true;
  // Default: rotate heuristics so all three stay in play.
  u.kind = chooser_ ? chooser_(id) : static_cast<ramsey::HeuristicKind>(id % 3);
  auto [it, _] = units_.emplace(id, std::move(u));
  ++assigned_count_;
  return spec_for(id, it->second);
}

std::optional<ramsey::WorkSpec> WorkPool::acquire_unit(std::uint64_t unit_id) {
  auto it = units_.find(unit_id);
  if (it == units_.end() || it->second.assigned) return std::nullopt;
  idle_.erase({it->second.best_energy, unit_id});
  it->second.assigned = true;
  ++assigned_count_;
  return spec_for(unit_id, it->second);
}

void WorkPool::report_one(const ramsey::WorkReport& rep) {
  auto it = units_.find(rep.unit_id);
  if (it == units_.end()) return;
  Unit& u = it->second;
  const bool was_idle = !u.assigned && !u.resume.empty();
  if (was_idle) idle_.erase({u.best_energy, rep.unit_id});
  if (rep.best_energy < u.best_energy) {
    u.best_energy = rep.best_energy;
    dirty_ = true;
  }
  if (!rep.best_graph.empty()) {
    u.resume = rep.best_graph;
    dirty_ = true;
  }
  if (!u.assigned && !u.resume.empty()) {
    idle_.insert({u.best_energy, rep.unit_id});
  }
}

void WorkPool::report(const ramsey::WorkReport& rep) { report_one(rep); }

void WorkPool::report_many(std::span<const ramsey::WorkReport> reps) {
  for (const auto& rep : reps) report_one(rep);
}

void WorkPool::release_one(std::uint64_t unit_id) {
  auto it = units_.find(unit_id);
  if (it == units_.end()) return;
  Unit& u = it->second;
  if (u.assigned) {
    u.assigned = false;
    --assigned_count_;
  } else if (!u.resume.empty()) {
    return;  // already idle and indexed; nothing to do
  }
  if (u.resume.empty()) {
    // Never reported: nothing worth resuming; forget it entirely.
    units_.erase(it);
  } else {
    idle_.insert({u.best_energy, unit_id});
    dirty_ = true;
  }
}

void WorkPool::release(std::uint64_t unit_id) {
  release_one(unit_id);
  trim_idle();
}

void WorkPool::release_many(std::span<const std::uint64_t> ids) {
  for (auto id : ids) release_one(id);
  trim_idle();
}

bool WorkPool::assigned(std::uint64_t unit_id) const {
  auto it = units_.find(unit_id);
  return it != units_.end() && it->second.assigned;
}

std::optional<ramsey::HeuristicKind> WorkPool::unit_kind(std::uint64_t unit_id) const {
  auto it = units_.find(unit_id);
  if (it == units_.end()) return std::nullopt;
  return it->second.kind;
}

std::optional<std::uint64_t> WorkPool::best_energy(std::uint64_t unit_id) const {
  auto it = units_.find(unit_id);
  if (it == units_.end() || it->second.best_energy == ~0ULL) return std::nullopt;
  return it->second.best_energy;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
WorkPool::peek_idle_best() const {
  if (idle_.empty()) return std::nullopt;
  return *idle_.begin();
}

std::vector<std::uint64_t> WorkPool::assigned_units() const {
  std::vector<std::uint64_t> out;
  out.reserve(assigned_count_);
  for (const auto& [id, u] : units_) {
    if (u.assigned) out.push_back(id);
  }
  return out;
}

Bytes WorkPool::export_frontier() const {
  Writer w;
  std::uint32_t count = 0;
  for (const auto& [id, u] : units_) {
    if (!u.resume.empty()) ++count;
  }
  w.u32(count);
  for (const auto& [id, u] : units_) {
    if (u.resume.empty()) continue;
    w.u64(id);
    w.u64(u.seed);
    w.u8(static_cast<std::uint8_t>(u.kind));
    w.u64(u.best_energy);
    w.blob(u.resume);
  }
  return w.take();
}

std::size_t WorkPool::import_frontier(const Bytes& blob) {
  Reader r(blob);
  auto count = r.u32();
  // Count guard: bound by the absolute ceiling AND the bytes present (each
  // entry is at least 8+8+1+8+4 = 29 bytes).
  if (!count || *count > 2'000'000 || *count > r.remaining() / 29) return 0;
  std::size_t imported = 0;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.u64();
    auto seed = r.u64();
    auto kind = r.u8();
    auto energy = r.u64();
    auto resume = r.blob();
    if (!id || !seed || !kind || !energy || !resume) break;
    if (*kind > static_cast<std::uint8_t>(ramsey::HeuristicKind::kAnneal)) continue;
    // Only units in our id range: a restarted shard replays its own slice.
    if (!owns(*id)) continue;
    // Resume blobs must still decode as valid graphs of our order.
    if (resume->size() > ramsey::kMaxGraphBlob) continue;
    auto g = ramsey::ColoredGraph::deserialize(*resume);
    if (!g || g->order() != opts_.n) continue;
    if (units_.contains(*id)) continue;  // live unit wins over checkpoint
    Unit u;
    u.seed = *seed;
    u.kind = static_cast<ramsey::HeuristicKind>(*kind);
    u.best_energy = *energy;
    u.resume = std::move(*resume);
    u.assigned = false;
    idle_.insert({u.best_energy, *id});
    units_.emplace(*id, std::move(u));
    next_id_ = std::max(next_id_, *id + opts_.id_stride);
    ++imported;
  }
  if (imported > 0) dirty_ = true;
  trim_idle();
  return imported;
}

void WorkPool::trim_idle() {
  // Keep the bounded "file system footprint" discipline of Section 3.1.2:
  // drop the *worst* idle units beyond the cap.
  while (idle_.size() > opts_.max_idle_frontier) {
    auto worst = std::prev(idle_.end());
    units_.erase(worst->second);
    idle_.erase(worst);
    dirty_ = true;
  }
}

}  // namespace ew::core
