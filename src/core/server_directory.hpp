// The active-server directory (paper Section 3.1.2).
//
// "Volatile-but-replicated state is passed between processes as a result of
// Gossip updates ... For example, the up-to-date list of active servers is
// volatile-but-replicated state."  And Section 5.4: "Scheduler birth and
// death information was circulated via the Gossip protocol so application
// clients could learn of the currently viable schedulers."
//
// ServerDirectoryModule is a ServiceFramework control module: each server
// running it announces itself with a monotonically refreshed heartbeat; the
// merged directory travels between servers as one gossip-synchronized state
// object (statetype::kServerList) with a custom freshness comparator
// (entry-wise newest-heartbeat union). Entries whose heartbeat goes stale
// are dropped — a dead scheduler disappears from every replica within a few
// gossip rounds. Clients can ask any participating server for the current
// list (kDirectoryQuery).
#pragma once

#include <map>

#include "core/protocol.hpp"
#include "core/service_framework.hpp"

namespace ew::core {

namespace msgtype {
constexpr MsgType kDirectoryQuery = 0x0260;
}

/// One directory entry: a server and the (logical) time it last proved life.
struct ServerEntry {
  Endpoint server;
  std::uint64_t heartbeat = 0;  // announcer's monotonic counter

  friend bool operator==(const ServerEntry&, const ServerEntry&) = default;
};

/// The replicated directory value and its wire format.
class ServerList {
 public:
  /// Merge an entry, keeping the newest heartbeat per server. Returns true
  /// if anything changed.
  bool merge(const ServerEntry& e);
  bool merge(const ServerList& other);
  /// Drop entries whose heartbeat lags the newest by more than `max_lag`.
  void prune(std::uint64_t max_lag);

  [[nodiscard]] std::vector<ServerEntry> entries() const;
  [[nodiscard]] std::vector<Endpoint> servers() const;
  [[nodiscard]] bool contains(const Endpoint& e) const { return map_.contains(e); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  [[nodiscard]] Bytes serialize() const;
  static Result<ServerList> deserialize(const Bytes& data);

  /// Freshness comparator for statetype::kServerList: a list is fresher if
  /// it knows a newer heartbeat for any server or any server the other
  /// lacks. (Partial order flattened to the paper's compare-two-blobs
  /// interface: mutual novelty compares by total heartbeat sum so exchanges
  /// still converge via merge-on-apply.)
  static int compare(const Bytes& a, const Bytes& b);

  /// Union merger for statetype::kServerList: entry-wise newest-heartbeat
  /// union of both encodings. Registered so every holder re-unions instead
  /// of replacing wholesale (gossip::MergeFn).
  static Bytes merge_blobs(const Bytes& a, const Bytes& b);

 private:
  std::map<Endpoint, std::uint64_t> map_;
};

class ServerDirectoryModule final : public ServiceModule {
 public:
  struct Options {
    Duration heartbeat_period = 20 * kSecond;
    /// Entries older than this many of *our* heartbeats are considered dead.
    std::uint64_t stale_after = 6;
  };

  ServerDirectoryModule() : ServerDirectoryModule(Options{}) {}
  explicit ServerDirectoryModule(Options opts) : opts_(opts) {}

  [[nodiscard]] const char* name() const override { return "server-directory"; }
  void attach(ServiceContext& ctx) override;

  [[nodiscard]] const ServerList& directory() const { return list_; }
  [[nodiscard]] std::uint64_t heartbeats_sent() const { return beat_; }

  /// Register the directory comparator (call once per ComparatorRegistry).
  static void register_comparator(gossip::ComparatorRegistry& registry);

 private:
  Bytes state() const;
  void apply(const Bytes& blob);

  Options opts_;
  ServerList list_;
  Endpoint self_;
  std::uint64_t beat_ = 0;
};

}  // namespace ew::core
