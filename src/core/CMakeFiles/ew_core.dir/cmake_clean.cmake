file(REMOVE_RECURSE
  "CMakeFiles/ew_core.dir/client.cpp.o"
  "CMakeFiles/ew_core.dir/client.cpp.o.d"
  "CMakeFiles/ew_core.dir/logging_service.cpp.o"
  "CMakeFiles/ew_core.dir/logging_service.cpp.o.d"
  "CMakeFiles/ew_core.dir/persistent_state.cpp.o"
  "CMakeFiles/ew_core.dir/persistent_state.cpp.o.d"
  "CMakeFiles/ew_core.dir/protocol.cpp.o"
  "CMakeFiles/ew_core.dir/protocol.cpp.o.d"
  "CMakeFiles/ew_core.dir/scheduler.cpp.o"
  "CMakeFiles/ew_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/ew_core.dir/server_directory.cpp.o"
  "CMakeFiles/ew_core.dir/server_directory.cpp.o.d"
  "CMakeFiles/ew_core.dir/service_framework.cpp.o"
  "CMakeFiles/ew_core.dir/service_framework.cpp.o.d"
  "CMakeFiles/ew_core.dir/sharded_work_pool.cpp.o"
  "CMakeFiles/ew_core.dir/sharded_work_pool.cpp.o.d"
  "CMakeFiles/ew_core.dir/work_pool.cpp.o"
  "CMakeFiles/ew_core.dir/work_pool.cpp.o.d"
  "libew_core.a"
  "libew_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
