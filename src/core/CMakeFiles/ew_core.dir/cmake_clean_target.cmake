file(REMOVE_RECURSE
  "libew_core.a"
)
