# Empty dependencies file for ew_core.
# This may be replaced when dependencies are built.
