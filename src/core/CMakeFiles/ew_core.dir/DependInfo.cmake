
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/ew_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/client.cpp.o.d"
  "/root/repo/src/core/logging_service.cpp" "src/core/CMakeFiles/ew_core.dir/logging_service.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/logging_service.cpp.o.d"
  "/root/repo/src/core/persistent_state.cpp" "src/core/CMakeFiles/ew_core.dir/persistent_state.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/persistent_state.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/ew_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/ew_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/server_directory.cpp" "src/core/CMakeFiles/ew_core.dir/server_directory.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/server_directory.cpp.o.d"
  "/root/repo/src/core/service_framework.cpp" "src/core/CMakeFiles/ew_core.dir/service_framework.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/service_framework.cpp.o.d"
  "/root/repo/src/core/sharded_work_pool.cpp" "src/core/CMakeFiles/ew_core.dir/sharded_work_pool.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/sharded_work_pool.cpp.o.d"
  "/root/repo/src/core/work_pool.cpp" "src/core/CMakeFiles/ew_core.dir/work_pool.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/work_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/ew_net.dir/DependInfo.cmake"
  "/root/repo/src/forecast/CMakeFiles/ew_forecast.dir/DependInfo.cmake"
  "/root/repo/src/gossip/CMakeFiles/ew_gossip.dir/DependInfo.cmake"
  "/root/repo/src/ramsey/CMakeFiles/ew_ramsey.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ew_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
