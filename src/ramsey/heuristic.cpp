#include "ramsey/heuristic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ew::ramsey {

const char* heuristic_name(HeuristicKind k) {
  switch (k) {
    case HeuristicKind::kGreedy: return "greedy";
    case HeuristicKind::kTabu: return "tabu";
    case HeuristicKind::kAnneal: return "anneal";
  }
  return "unknown";
}

namespace {

/// Common machinery: maintains the coloring, incremental energy, best-seen
/// tracking, and the sampled-neighbourhood move generator.
class BaseSearch : public Heuristic {
 public:
  BaseSearch(const HeuristicParams& p, std::optional<ColoredGraph> resume)
      : p_(p),
        kr_(p.k),
        kb_(p.k_blue > 0 ? p.k_blue : p.k),
        rng_(p.seed),
        g_(resume ? std::move(*resume) : ColoredGraph::random(p.n, rng_)),
        best_(g_) {
    OpsCounter ops;
    energy_ = count_bad_cliques(g_, kr_, kb_, ops);
    best_energy_ = energy_;
  }

  StepOutcome run(std::uint64_t ops_budget) override {
    OpsCounter ops;
    StepOutcome out;
    while (ops.ops < ops_budget && energy_ > 0) {
      move(ops);
      ++out.moves;
      if (energy_ < best_energy_) {
        best_energy_ = energy_;
        best_ = g_;
      }
    }
    out.ops_used = ops.ops;
    out.energy = energy_;
    out.best_energy = best_energy_;
    out.found = energy_ == 0;
    return out;
  }

  [[nodiscard]] const ColoredGraph& current() const override { return g_; }
  [[nodiscard]] const ColoredGraph& best() const override { return best_; }
  [[nodiscard]] std::uint64_t best_energy() const override { return best_energy_; }

 protected:
  struct Candidate {
    int i = 0;
    int j = 0;
    std::int64_t delta = 0;
  };

  /// Sample `sample_size` random edges and return them with flip deltas.
  std::vector<Candidate> sample_moves(OpsCounter& ops) {
    std::vector<Candidate> cands;
    cands.reserve(static_cast<std::size_t>(p_.sample_size));
    for (int s = 0; s < p_.sample_size; ++s) {
      Candidate c;
      c.i = static_cast<int>(rng_.below(static_cast<std::uint64_t>(p_.n)));
      c.j = static_cast<int>(rng_.below(static_cast<std::uint64_t>(p_.n - 1)));
      if (c.j >= c.i) ++c.j;
      c.delta = flip_delta(g_, kr_, kb_, c.i, c.j, ops);
      cands.push_back(c);
    }
    return cands;
  }

  void apply(const Candidate& c) {
    g_.flip(c.i, c.j);
    energy_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(energy_) + c.delta);
  }

  /// One heuristic-specific move.
  virtual void move(OpsCounter& ops) = 0;

  HeuristicParams p_;
  int kr_ = 4;
  int kb_ = 4;
  Rng rng_;
  ColoredGraph g_;
  ColoredGraph best_;
  std::uint64_t energy_ = 0;
  std::uint64_t best_energy_ = 0;
};

class GreedySearch final : public BaseSearch {
 public:
  using BaseSearch::BaseSearch;
  [[nodiscard]] HeuristicKind kind() const override { return HeuristicKind::kGreedy; }

 private:
  void move(OpsCounter& ops) override {
    auto cands = sample_moves(ops);
    const auto best = std::min_element(
        cands.begin(), cands.end(),
        [](const Candidate& a, const Candidate& b) { return a.delta < b.delta; });
    if (best->delta < 0 ||
        (best->delta == 0 && rng_.chance(p_.sideways_prob))) {
      apply(*best);
      stagnant_ = 0;
    } else if (++stagnant_ > p_.stagnation_moves) {
      // Random kick: flip a handful of edges to escape the local minimum.
      for (int t = 0; t < 4; ++t) {
        Candidate c;
        c.i = static_cast<int>(rng_.below(static_cast<std::uint64_t>(p_.n)));
        c.j = static_cast<int>(rng_.below(static_cast<std::uint64_t>(p_.n - 1)));
        if (c.j >= c.i) ++c.j;
        c.delta = flip_delta(g_, kr_, kb_, c.i, c.j, ops);
        apply(c);
      }
      stagnant_ = 0;
    }
  }
  std::uint64_t stagnant_ = 0;
};

class TabuSearch final : public BaseSearch {
 public:
  TabuSearch(const HeuristicParams& p, std::optional<ColoredGraph> resume)
      : BaseSearch(p, std::move(resume)),
        tabu_until_(static_cast<std::size_t>(p_.n) * static_cast<std::size_t>(p_.n),
                    0) {}
  [[nodiscard]] HeuristicKind kind() const override { return HeuristicKind::kTabu; }

 private:
  std::size_t edge_index(int i, int j) const {
    if (i > j) std::swap(i, j);
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(p_.n) +
           static_cast<std::size_t>(j);
  }

  void move(OpsCounter& ops) override {
    ++clock_;
    auto cands = sample_moves(ops);
    const Candidate* chosen = nullptr;
    for (const auto& c : cands) {
      const bool tabu = tabu_until_[edge_index(c.i, c.j)] > clock_;
      // Aspiration: a move that would improve on the best-ever is always ok.
      const bool aspires =
          static_cast<std::int64_t>(energy_) + c.delta <
          static_cast<std::int64_t>(best_energy_);
      if (tabu && !aspires) continue;
      if (chosen == nullptr || c.delta < chosen->delta) chosen = &c;
    }
    if (chosen == nullptr) return;  // everything tabu this round
    tabu_until_[edge_index(chosen->i, chosen->j)] =
        clock_ + static_cast<std::uint64_t>(p_.tabu_tenure);
    apply(*chosen);
  }

  std::vector<std::uint64_t> tabu_until_;
  std::uint64_t clock_ = 0;
};

class Annealer final : public BaseSearch {
 public:
  Annealer(const HeuristicParams& p, std::optional<ColoredGraph> resume)
      : BaseSearch(p, std::move(resume)), temp_(p.initial_temp) {}
  [[nodiscard]] HeuristicKind kind() const override { return HeuristicKind::kAnneal; }

 private:
  void move(OpsCounter& ops) override {
    Candidate c;
    c.i = static_cast<int>(rng_.below(static_cast<std::uint64_t>(p_.n)));
    c.j = static_cast<int>(rng_.below(static_cast<std::uint64_t>(p_.n - 1)));
    if (c.j >= c.i) ++c.j;
    c.delta = flip_delta(g_, kr_, kb_, c.i, c.j, ops);
    const bool accept =
        c.delta <= 0 ||
        rng_.chance(std::exp(-static_cast<double>(c.delta) / temp_));
    if (accept) apply(c);
    // Progress is judged within the current annealing cycle: the global
    // best is tracked by the base class; the cycle best decides reheats.
    if (energy_ < cycle_best_) {
      cycle_best_ = energy_;
      since_cycle_improvement_ = 0;
    } else {
      ++since_cycle_improvement_;
    }
    temp_ *= p_.cooling;
    if (temp_ < 1e-3) temp_ = 1e-3;
    if (since_cycle_improvement_ > p_.stagnation_moves) {
      since_cycle_improvement_ = 0;
      if (++reheats_ < kReheatsBeforeRestart) {
        temp_ = p_.restart_temp;  // jiggle out of the local basin
      } else {
        // Several reheats bought nothing: resample the search stream (deep
        // basins around energy 3-5 are common on unique-solution instances).
        reheats_ = 0;
        g_ = ColoredGraph::random(p_.n, rng_);
        energy_ = count_bad_cliques(g_, kr_, kb_, ops);
        cycle_best_ = energy_;
        temp_ = p_.initial_temp;
      }
    }
  }

  static constexpr int kReheatsBeforeRestart = 4;
  double temp_;
  std::uint64_t cycle_best_ = ~0ULL;
  std::uint64_t since_cycle_improvement_ = 0;
  int reheats_ = 0;
};

}  // namespace

std::unique_ptr<Heuristic> make_heuristic(HeuristicKind kind,
                                          const HeuristicParams& params,
                                          std::optional<ColoredGraph> resume) {
  switch (kind) {
    case HeuristicKind::kGreedy:
      return std::make_unique<GreedySearch>(params, std::move(resume));
    case HeuristicKind::kTabu:
      return std::make_unique<TabuSearch>(params, std::move(resume));
    case HeuristicKind::kAnneal:
      return std::make_unique<Annealer>(params, std::move(resume));
  }
  throw std::invalid_argument("unknown heuristic kind");
}

}  // namespace ew::ramsey
