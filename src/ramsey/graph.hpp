// Two-colored complete graphs for Ramsey counter-example search (paper §3).
//
// A counter-example for the n-th Ramsey number on j vertices is a
// two-coloring of the complete graph K_j with no monochromatic K_n. Vertices
// are limited to 64 so a color class's neighbourhood is one machine word;
// the clique-counting kernels (clique.hpp) are bitmask intersections, which
// is also what makes the integer-operation instrumentation of Section 4
// meaningful (the work really is "integer test and arithmetic").
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace ew::ramsey {

/// Edge colors. A complete graph stores one bit per edge: set = red.
enum class Color : std::uint8_t { kRed = 0, kBlue = 1 };

constexpr Color other(Color c) {
  return c == Color::kRed ? Color::kBlue : Color::kRed;
}

/// A two-colored complete graph on up to 64 vertices.
class ColoredGraph {
 public:
  static constexpr int kMaxVertices = 64;

  /// All edges blue initially.
  explicit ColoredGraph(int n);

  [[nodiscard]] int order() const { return n_; }
  [[nodiscard]] int edge_count() const { return n_ * (n_ - 1) / 2; }

  [[nodiscard]] Color color(int i, int j) const;
  void set_color(int i, int j, Color c);
  void flip(int i, int j) { set_color(i, j, other(color(i, j))); }

  /// Bitmask of vertices adjacent to v by an edge of color c (excludes v).
  [[nodiscard]] std::uint64_t neighbors(Color c, int v) const;

  /// Mask with bits [0, order) set.
  [[nodiscard]] std::uint64_t vertex_mask() const;

  /// Uniformly random coloring.
  static ColoredGraph random(int n, Rng& rng);

  /// Circulant coloring: edge (i, j) is red iff |i - j| mod n is in
  /// `red_offsets` (the set must be closed under negation mod n; this is
  /// checked). The classical small-Ramsey counter-examples are circulant.
  static Result<ColoredGraph> circulant(int n,
                                        const std::vector<int>& red_offsets);

  /// The Paley graph of prime order q ≡ 1 (mod 4): edge (i, j) red iff
  /// i - j is a nonzero quadratic residue mod q. Paley(17) is the unique
  /// counter-example proving R(4,4) > 17.
  static Result<ColoredGraph> paley(int q);

  /// Wire encoding (order + packed red bitmap) for gossip / persistent state.
  [[nodiscard]] Bytes serialize() const;
  static Result<ColoredGraph> deserialize(const Bytes& data);

  /// Number of red edges (sanity metric).
  [[nodiscard]] int red_edge_count() const;

  friend bool operator==(const ColoredGraph& a, const ColoredGraph& b);

 private:
  void check_pair(int i, int j) const;
  int n_;
  // red_[i] bit j set <=> edge (i, j) exists and is red. Symmetric.
  std::array<std::uint64_t, kMaxVertices> red_{};
};

}  // namespace ew::ramsey
