// Instrumented monochromatic-clique counting kernels.
//
// The paper's performance numbers (Figures 2-4) count "integer test and
// arithmetic instructions" with counters inserted "after every integer test
// and arithmetic operation" (Section 4). OpsCounter is that counter: the
// kernels charge it for each word-level integer operation they perform, so
// the rates the benchmark harness reports are an operation-for-operation
// analogue of the paper's conservative methodology.
#pragma once

#include <cstdint>

#include "ramsey/graph.hpp"

namespace ew::ramsey {

/// Count of "useful" integer operations delivered to the application.
struct OpsCounter {
  std::uint64_t ops = 0;
  void charge(std::uint64_t n) { ops += n; }
};

/// Number of monochromatic k-cliques of the given color.
/// k must be in [2, 8] (R5/R6 search needs at most 6).
std::uint64_t count_mono_cliques(const ColoredGraph& g, int k, Color c,
                                 OpsCounter& ops);

/// Total monochromatic k-cliques over both colors — the search "energy";
/// zero means `g` is a counter-example witnessing R(k,k) > order.
std::uint64_t count_bad_cliques(const ColoredGraph& g, int k, OpsCounter& ops);

/// Asymmetric energy: red K_{k_red} plus blue K_{k_blue}. Zero means `g`
/// witnesses R(k_red, k_blue) > order (the general classical Ramsey case;
/// the paper's application is the symmetric k_red == k_blue instance).
std::uint64_t count_bad_cliques(const ColoredGraph& g, int k_red, int k_blue,
                                OpsCounter& ops);

/// Number of monochromatic k-cliques of color c that contain edge (i, j),
/// assuming edge (i, j) currently has color c. Used for O(1)-ish local
/// search deltas: flipping (i, j) destroys exactly this many color-c cliques
/// and creates cliques_through_edge(..., other(c)) computed pre-flip.
std::uint64_t cliques_through_edge(const ColoredGraph& g, int k, int i, int j,
                                   Color c, OpsCounter& ops);

/// Energy change if edge (i, j) were flipped (negative is an improvement).
std::int64_t flip_delta(const ColoredGraph& g, int k, int i, int j,
                        OpsCounter& ops);

/// Asymmetric flip delta against the R(k_red, k_blue) energy.
std::int64_t flip_delta(const ColoredGraph& g, int k_red, int k_blue, int i,
                        int j, OpsCounter& ops);

/// Reference implementation by explicit vertex-subset enumeration; O(n^k).
/// Used only by tests to validate the bitmask kernels.
std::uint64_t count_mono_cliques_reference(const ColoredGraph& g, int k, Color c);

/// True iff `g` has no monochromatic k-clique in either color — the
/// persistent state manager's sanity check for stored counter-examples
/// (Section 3.1.2).
bool is_counterexample(const ColoredGraph& g, int k);

/// Asymmetric variant: no red K_{k_red} and no blue K_{k_blue}.
bool is_counterexample(const ColoredGraph& g, int k_red, int k_blue);

}  // namespace ew::ramsey
