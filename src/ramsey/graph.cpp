#include "ramsey/graph.hpp"

#include <bit>
#include <set>
#include <stdexcept>
#include <vector>

namespace ew::ramsey {

ColoredGraph::ColoredGraph(int n) : n_(n) {
  if (n < 1 || n > kMaxVertices) {
    throw std::invalid_argument("ColoredGraph: order out of range: " +
                                std::to_string(n));
  }
}

void ColoredGraph::check_pair(int i, int j) const {
  if (i < 0 || j < 0 || i >= n_ || j >= n_ || i == j) {
    throw std::invalid_argument("ColoredGraph: bad vertex pair (" +
                                std::to_string(i) + "," + std::to_string(j) + ")");
  }
}

Color ColoredGraph::color(int i, int j) const {
  check_pair(i, j);
  return (red_[static_cast<std::size_t>(i)] >> j) & 1u ? Color::kRed
                                                       : Color::kBlue;
}

void ColoredGraph::set_color(int i, int j, Color c) {
  check_pair(i, j);
  const auto bi = static_cast<std::size_t>(i);
  const auto bj = static_cast<std::size_t>(j);
  if (c == Color::kRed) {
    red_[bi] |= (1ULL << j);
    red_[bj] |= (1ULL << i);
  } else {
    red_[bi] &= ~(1ULL << j);
    red_[bj] &= ~(1ULL << i);
  }
}

std::uint64_t ColoredGraph::neighbors(Color c, int v) const {
  if (v < 0 || v >= n_) throw std::invalid_argument("ColoredGraph: bad vertex");
  const std::uint64_t self = 1ULL << v;
  if (c == Color::kRed) return red_[static_cast<std::size_t>(v)] & ~self;
  return vertex_mask() & ~red_[static_cast<std::size_t>(v)] & ~self;
}

std::uint64_t ColoredGraph::vertex_mask() const {
  return n_ == 64 ? ~0ULL : (1ULL << n_) - 1;
}

ColoredGraph ColoredGraph::random(int n, Rng& rng) {
  ColoredGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.set_color(i, j, rng.chance(0.5) ? Color::kRed : Color::kBlue);
    }
  }
  return g;
}

Result<ColoredGraph> ColoredGraph::circulant(int n,
                                             const std::vector<int>& red_offsets) {
  if (n < 1 || n > kMaxVertices) return Error{Err::kRejected, "order out of range"};
  std::set<int> offsets;
  for (int d : red_offsets) {
    const int m = ((d % n) + n) % n;
    if (m == 0) return Error{Err::kRejected, "offset 0 is not an edge"};
    offsets.insert(m);
  }
  for (int d : offsets) {
    if (!offsets.contains(n - d)) {
      return Error{Err::kRejected,
                   "offset set not symmetric: missing " + std::to_string(n - d)};
    }
  }
  ColoredGraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (offsets.contains((j - i) % n)) g.set_color(i, j, Color::kRed);
    }
  }
  return g;
}

Result<ColoredGraph> ColoredGraph::paley(int q) {
  if (q < 5 || q > kMaxVertices) return Error{Err::kRejected, "order out of range"};
  for (int d = 2; d * d <= q; ++d) {
    if (q % d == 0) return Error{Err::kRejected, "Paley order must be prime"};
  }
  if (q % 4 != 1) return Error{Err::kRejected, "Paley order must be 1 mod 4"};
  std::vector<int> residues;
  std::set<int> seen;
  for (int x = 1; x < q; ++x) {
    const int r = (x * x) % q;
    if (seen.insert(r).second) residues.push_back(r);
  }
  return circulant(q, residues);
}

Bytes ColoredGraph::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(n_));
  for (int i = 0; i < n_; ++i) w.u64(red_[static_cast<std::size_t>(i)]);
  return w.take();
}

Result<ColoredGraph> ColoredGraph::deserialize(const Bytes& data) {
  Reader r(data);
  auto n = r.u8();
  if (!n) return n.error();
  if (*n < 1 || *n > kMaxVertices) return Error{Err::kProtocol, "bad graph order"};
  ColoredGraph g(*n);
  for (int i = 0; i < *n; ++i) {
    auto row = r.u64();
    if (!row) return row.error();
    g.red_[static_cast<std::size_t>(i)] = *row;
  }
  // Validate symmetry, zero diagonal, and no bits beyond the order — state
  // can arrive from the network, and the persistent-state manager's sanity
  // checks (Section 3.1.2) depend on well-formed graphs.
  const std::uint64_t mask = g.vertex_mask();
  for (int i = 0; i < *n; ++i) {
    const auto bi = static_cast<std::size_t>(i);
    if (g.red_[bi] & ~mask) return Error{Err::kProtocol, "bits beyond order"};
    if (g.red_[bi] & (1ULL << i)) return Error{Err::kProtocol, "self-loop bit"};
    for (int j = 0; j < *n; ++j) {
      const bool ij = (g.red_[bi] >> j) & 1u;
      const bool ji = (g.red_[static_cast<std::size_t>(j)] >> i) & 1u;
      if (ij != ji) return Error{Err::kProtocol, "asymmetric adjacency"};
    }
  }
  return g;
}

int ColoredGraph::red_edge_count() const {
  int total = 0;
  for (int i = 0; i < n_; ++i) {
    total += std::popcount(red_[static_cast<std::size_t>(i)]);
  }
  return total / 2;
}

bool operator==(const ColoredGraph& a, const ColoredGraph& b) {
  if (a.n_ != b.n_) return false;
  for (int i = 0; i < a.n_; ++i) {
    if (a.red_[static_cast<std::size_t>(i)] != b.red_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

}  // namespace ew::ramsey
