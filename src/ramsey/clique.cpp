#include "ramsey/clique.hpp"

#include <array>
#include <bit>
#include <stdexcept>
#include <vector>

namespace ew::ramsey {

namespace {

/// Adjacency rows for one color, captured once per call.
struct Adj {
  std::array<std::uint64_t, ColoredGraph::kMaxVertices> rows{};
};

Adj make_adj(const ColoredGraph& g, Color c) {
  Adj a;
  for (int v = 0; v < g.order(); ++v) {
    a.rows[static_cast<std::size_t>(v)] = g.neighbors(c, v);
  }
  return a;
}

/// Count `need`-cliques whose vertices all lie in `cand`, enumerating in
/// increasing vertex order. `cand` is already restricted to common neighbors
/// of the clique prefix. Charges the counter per word operation.
std::uint64_t count_rec(const Adj& adj, std::uint64_t cand, int need,
                        OpsCounter& ops) {
  if (need == 1) {
    ops.charge(1);  // popcount
    return static_cast<std::uint64_t>(std::popcount(cand));
  }
  std::uint64_t total = 0;
  std::uint64_t rest = cand;
  while (rest != 0) {
    const int v = std::countr_zero(rest);
    rest &= rest - 1;
    // ctz + clear + intersect + loop test ≈ 4 word ops.
    ops.charge(4);
    const std::uint64_t next = rest & adj.rows[static_cast<std::size_t>(v)];
    if (need == 2) {
      ops.charge(1);
      total += static_cast<std::uint64_t>(std::popcount(next));
    } else {
      total += count_rec(adj, next, need - 1, ops);
    }
  }
  return total;
}

void check_k(int k) {
  if (k < 2 || k > 8) {
    throw std::invalid_argument("clique size out of supported range [2,8]: " +
                                std::to_string(k));
  }
}

}  // namespace

std::uint64_t count_mono_cliques(const ColoredGraph& g, int k, Color c,
                                 OpsCounter& ops) {
  check_k(k);
  const Adj adj = make_adj(g, c);
  return count_rec(adj, g.vertex_mask(), k, ops);
}

std::uint64_t count_bad_cliques(const ColoredGraph& g, int k, OpsCounter& ops) {
  return count_bad_cliques(g, k, k, ops);
}

std::uint64_t count_bad_cliques(const ColoredGraph& g, int k_red, int k_blue,
                                OpsCounter& ops) {
  return count_mono_cliques(g, k_red, Color::kRed, ops) +
         count_mono_cliques(g, k_blue, Color::kBlue, ops);
}

std::uint64_t cliques_through_edge(const ColoredGraph& g, int k, int i, int j,
                                   Color c, OpsCounter& ops) {
  check_k(k);
  const Adj adj = make_adj(g, c);
  ops.charge(1);
  const std::uint64_t common = adj.rows[static_cast<std::size_t>(i)] &
                               adj.rows[static_cast<std::size_t>(j)];
  if (k == 2) return 1;  // the edge itself
  return count_rec(adj, common, k - 2, ops);
}

std::int64_t flip_delta(const ColoredGraph& g, int k, int i, int j,
                        OpsCounter& ops) {
  return flip_delta(g, k, k, i, j, ops);
}

std::int64_t flip_delta(const ColoredGraph& g, int k_red, int k_blue, int i,
                        int j, OpsCounter& ops) {
  const Color cur = g.color(i, j);
  const Color nxt = other(cur);
  const int k_cur = cur == Color::kRed ? k_red : k_blue;
  const int k_nxt = nxt == Color::kRed ? k_red : k_blue;
  // Cliques of the current color that contain (i,j) vanish; monochromatic
  // k-sets of the other color that were blocked only by this edge appear.
  // Both are (k-2)-clique counts in the relevant common neighborhoods and
  // neither depends on the color of (i,j) itself.
  const auto destroyed = cliques_through_edge(g, k_cur, i, j, cur, ops);
  const Adj adj = make_adj(g, nxt);
  ops.charge(1);
  const std::uint64_t common = adj.rows[static_cast<std::size_t>(i)] &
                               adj.rows[static_cast<std::size_t>(j)];
  const std::uint64_t created =
      (k_nxt == 2) ? 1 : count_rec(adj, common, k_nxt - 2, ops);
  return static_cast<std::int64_t>(created) - static_cast<std::int64_t>(destroyed);
}

std::uint64_t count_mono_cliques_reference(const ColoredGraph& g, int k, Color c) {
  check_k(k);
  const int n = g.order();
  std::vector<int> pick(static_cast<std::size_t>(k));
  std::uint64_t total = 0;
  // Enumerate k-subsets with an explicit odometer.
  for (int i = 0; i < k; ++i) pick[static_cast<std::size_t>(i)] = i;
  if (k > n) return 0;
  for (;;) {
    bool mono = true;
    for (int a = 0; a < k && mono; ++a) {
      for (int b = a + 1; b < k && mono; ++b) {
        if (g.color(pick[static_cast<std::size_t>(a)],
                    pick[static_cast<std::size_t>(b)]) != c) {
          mono = false;
        }
      }
    }
    if (mono) ++total;
    // Advance the odometer.
    int pos = k - 1;
    while (pos >= 0 &&
           pick[static_cast<std::size_t>(pos)] == n - k + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++pick[static_cast<std::size_t>(pos)];
    for (int q = pos + 1; q < k; ++q) {
      pick[static_cast<std::size_t>(q)] = pick[static_cast<std::size_t>(q - 1)] + 1;
    }
  }
  return total;
}

bool is_counterexample(const ColoredGraph& g, int k) {
  return is_counterexample(g, k, k);
}

bool is_counterexample(const ColoredGraph& g, int k_red, int k_blue) {
  OpsCounter ops;
  return count_bad_cliques(g, k_red, k_blue, ops) == 0;
}

}  // namespace ew::ramsey
