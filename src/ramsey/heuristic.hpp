// Search heuristics for Ramsey counter-examples (paper Section 3).
//
// The paper's application "does not use exhaustive search, but rather
// requires careful dynamic scheduling": clients run heuristics over the
// space of two-colorings, pruning with energy = number of monochromatic
// k-cliques, and the schedulers choose which heuristic each client runs.
// Three heuristics are provided (the paper mentions "each of the
// heuristics" without specifying them; these are the standard trio for this
// problem): greedy local search with sideways moves, tabu search, and
// simulated annealing. All run under an explicit integer-operation budget so
// a work unit maps onto the simulator's time model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "ramsey/clique.hpp"
#include "ramsey/graph.hpp"

namespace ew::ramsey {

enum class HeuristicKind : std::uint8_t {
  kGreedy = 0,
  kTabu = 1,
  kAnneal = 2,
};

const char* heuristic_name(HeuristicKind k);

/// Outcome of running a heuristic for one ops budget.
struct StepOutcome {
  std::uint64_t ops_used = 0;
  std::uint64_t energy = 0;      // bad cliques in the current coloring
  std::uint64_t best_energy = 0; // best seen this run
  bool found = false;            // energy reached zero
  std::uint64_t moves = 0;       // edge flips applied
};

/// A resumable heuristic search over colorings of K_n for mono-K_k freedom.
class Heuristic {
 public:
  virtual ~Heuristic() = default;
  [[nodiscard]] virtual HeuristicKind kind() const = 0;

  /// Run until roughly `ops_budget` integer operations are consumed or a
  /// counter-example is found. Resumable: call repeatedly.
  virtual StepOutcome run(std::uint64_t ops_budget) = 0;

  /// The current coloring (the counter-example when found() is true).
  [[nodiscard]] virtual const ColoredGraph& current() const = 0;
  [[nodiscard]] virtual const ColoredGraph& best() const = 0;
  [[nodiscard]] virtual std::uint64_t best_energy() const = 0;
};

/// Shared parameters for all heuristic implementations.
struct HeuristicParams {
  int n = 17;            // graph order to search
  int k = 4;             // forbidden red clique size
  /// Forbidden blue clique size; 0 means "same as k" (the symmetric
  /// classical case the paper searches). Setting it differently searches
  /// the general R(k, k_blue) witness space, e.g. n=8, k=3, k_blue=4 finds
  /// the Wagner graph proving R(3,4) > 8.
  int k_blue = 0;
  std::uint64_t seed = 1;
  int sample_size = 8;        // candidate edges examined per move
  double sideways_prob = 0.3; // greedy: chance to accept a zero-delta move
  int tabu_tenure = 24;       // tabu: moves an edge stays forbidden
  double initial_temp = 2.5;  // annealing: starting temperature
  double cooling = 0.9997;    // annealing: geometric cooling per move
  double restart_temp = 1.2;  // annealing: reheat level on stagnation
  std::uint64_t stagnation_moves = 4000;  // restart trigger
};

/// Factory. The start coloring is random from `params.seed` unless `resume`
/// is provided (work migrated from another client resumes its graph).
std::unique_ptr<Heuristic> make_heuristic(HeuristicKind kind,
                                          const HeuristicParams& params,
                                          std::optional<ColoredGraph> resume = {});

}  // namespace ew::ramsey
