file(REMOVE_RECURSE
  "libew_ramsey.a"
)
