# Empty dependencies file for ew_ramsey.
# This may be replaced when dependencies are built.
