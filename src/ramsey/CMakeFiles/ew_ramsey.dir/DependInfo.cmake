
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ramsey/clique.cpp" "src/ramsey/CMakeFiles/ew_ramsey.dir/clique.cpp.o" "gcc" "src/ramsey/CMakeFiles/ew_ramsey.dir/clique.cpp.o.d"
  "/root/repo/src/ramsey/graph.cpp" "src/ramsey/CMakeFiles/ew_ramsey.dir/graph.cpp.o" "gcc" "src/ramsey/CMakeFiles/ew_ramsey.dir/graph.cpp.o.d"
  "/root/repo/src/ramsey/heuristic.cpp" "src/ramsey/CMakeFiles/ew_ramsey.dir/heuristic.cpp.o" "gcc" "src/ramsey/CMakeFiles/ew_ramsey.dir/heuristic.cpp.o.d"
  "/root/repo/src/ramsey/workunit.cpp" "src/ramsey/CMakeFiles/ew_ramsey.dir/workunit.cpp.o" "gcc" "src/ramsey/CMakeFiles/ew_ramsey.dir/workunit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
