file(REMOVE_RECURSE
  "CMakeFiles/ew_ramsey.dir/clique.cpp.o"
  "CMakeFiles/ew_ramsey.dir/clique.cpp.o.d"
  "CMakeFiles/ew_ramsey.dir/graph.cpp.o"
  "CMakeFiles/ew_ramsey.dir/graph.cpp.o.d"
  "CMakeFiles/ew_ramsey.dir/heuristic.cpp.o"
  "CMakeFiles/ew_ramsey.dir/heuristic.cpp.o.d"
  "CMakeFiles/ew_ramsey.dir/workunit.cpp.o"
  "CMakeFiles/ew_ramsey.dir/workunit.cpp.o.d"
  "libew_ramsey.a"
  "libew_ramsey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_ramsey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
