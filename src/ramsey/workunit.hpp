// Work units: the scheduler's currency (paper Sections 3.1, 3.1.1).
//
// A WorkSpec tells a computational client which subproblem to attack (graph
// order, forbidden clique size), with which heuristic, from which seed, and
// for how many integer operations per reporting quantum. A WorkReport is
// what the client sends back with each progress report; the scheduler feeds
// the reported rate to the forecasters and the logging service records it.
// Both are wire-encoded with the lingua franca serializer.
#pragma once

#include <cstdint>
#include <optional>

#include "common/result.hpp"
#include "common/serialize.hpp"
#include "ramsey/graph.hpp"
#include "ramsey/heuristic.hpp"

namespace ew::ramsey {

/// Upper bound on the serialized-graph blobs carried inside WorkSpec.resume
/// and WorkReport.best_graph. A ColoredGraph wire image is at most
/// 1 + kMaxVertices * 8 bytes; anything larger is rejected before allocation
/// so a hostile frame cannot make the decoder balloon.
constexpr std::size_t kMaxGraphBlob = 1 + ColoredGraph::kMaxVertices * 8;

/// A schedulable slice of the Ramsey search.
struct WorkSpec {
  std::uint64_t unit_id = 0;
  int n = 17;                       // graph order to search
  int k = 4;                        // forbidden clique size
  HeuristicKind kind = HeuristicKind::kGreedy;
  std::uint64_t seed = 1;           // search stream seed
  std::uint64_t report_ops = 50'000'000;  // ops per progress report
  std::optional<ColoredGraph> resume;     // migrated in-progress coloring

  /// Minimum wire footprint of one spec; batch decoders use it to bound
  /// element counts against the bytes actually present.
  static constexpr std::size_t kMinWire = 8 + 1 + 1 + 1 + 8 + 8 + 1;

  void write(Writer& w) const;            // in-stream (batch) encoding
  static Result<WorkSpec> read(Reader& r);
  [[nodiscard]] Bytes serialize() const;
  static Result<WorkSpec> deserialize(const Bytes& data);
};

/// Progress report from a client to its scheduler.
struct WorkReport {
  std::uint64_t unit_id = 0;
  std::uint64_t ops_done = 0;       // ops since the previous report
  std::uint64_t best_energy = 0;
  bool found = false;               // best graph is a counter-example
  Bytes best_graph;                 // serialized ColoredGraph (may be empty)

  static constexpr std::size_t kMinWire = 8 + 8 + 8 + 1 + 4;

  void write(Writer& w) const;            // in-stream (batch) encoding
  static Result<WorkReport> read(Reader& r);
  [[nodiscard]] Bytes serialize() const;
  static Result<WorkReport> deserialize(const Bytes& data);
};

}  // namespace ew::ramsey
