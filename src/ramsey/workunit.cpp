#include "ramsey/workunit.hpp"

namespace ew::ramsey {

namespace {

// Bounded blob read for the graph payloads: the length prefix is checked
// against both the structural maximum and the bytes remaining before any
// allocation happens (mirrors the gossip codec guards from DESIGN.md §12).
Result<Bytes> read_graph_blob(Reader& r, const char* what) {
  auto len = r.u32();
  if (!len) return len.error();
  if (*len > kMaxGraphBlob) return Error{Err::kProtocol, what};
  if (*len > r.remaining()) return Error{Err::kProtocol, "truncated blob"};
  return r.raw(static_cast<std::size_t>(*len));
}

}  // namespace

void WorkSpec::write(Writer& w) const {
  w.u64(unit_id);
  w.u8(static_cast<std::uint8_t>(n));
  w.u8(static_cast<std::uint8_t>(k));
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(seed);
  w.u64(report_ops);
  if (resume) {
    w.boolean(true);
    w.blob(resume->serialize());
  } else {
    w.boolean(false);
  }
}

Result<WorkSpec> WorkSpec::read(Reader& r) {
  WorkSpec s;
  auto id = r.u64();
  if (!id) return id.error();
  s.unit_id = *id;
  auto n = r.u8();
  if (!n) return n.error();
  s.n = *n;
  auto k = r.u8();
  if (!k) return k.error();
  s.k = *k;
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (*kind > static_cast<std::uint8_t>(HeuristicKind::kAnneal)) {
    return Error{Err::kProtocol, "bad heuristic kind"};
  }
  s.kind = static_cast<HeuristicKind>(*kind);
  auto seed = r.u64();
  if (!seed) return seed.error();
  s.seed = *seed;
  auto ro = r.u64();
  if (!ro) return ro.error();
  s.report_ops = *ro;
  auto has_resume = r.boolean();
  if (!has_resume) return has_resume.error();
  if (*has_resume) {
    auto blob = read_graph_blob(r, "oversized resume graph");
    if (!blob) return blob.error();
    auto g = ColoredGraph::deserialize(*blob);
    if (!g) return g.error();
    s.resume = std::move(*g);
  }
  return s;
}

Bytes WorkSpec::serialize() const {
  Writer w;
  write(w);
  return w.take();
}

Result<WorkSpec> WorkSpec::deserialize(const Bytes& data) {
  Reader r(data);
  return read(r);
}

void WorkReport::write(Writer& w) const {
  w.u64(unit_id);
  w.u64(ops_done);
  w.u64(best_energy);
  w.boolean(found);
  w.blob(best_graph);
}

Result<WorkReport> WorkReport::read(Reader& r) {
  WorkReport rep;
  auto id = r.u64();
  if (!id) return id.error();
  rep.unit_id = *id;
  auto ops = r.u64();
  if (!ops) return ops.error();
  rep.ops_done = *ops;
  auto be = r.u64();
  if (!be) return be.error();
  rep.best_energy = *be;
  auto found = r.boolean();
  if (!found) return found.error();
  rep.found = *found;
  auto blob = read_graph_blob(r, "oversized best graph");
  if (!blob) return blob.error();
  rep.best_graph = std::move(*blob);
  return rep;
}

Bytes WorkReport::serialize() const {
  Writer w;
  write(w);
  return w.take();
}

Result<WorkReport> WorkReport::deserialize(const Bytes& data) {
  Reader r(data);
  return read(r);
}

}  // namespace ew::ramsey
