# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("forecast")
subdirs("net")
subdirs("gossip")
subdirs("sim")
subdirs("infra")
subdirs("ramsey")
subdirs("core")
subdirs("sim/mc")
subdirs("nws")
subdirs("app")
