#include "forecast/forecaster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ew {

// trim = 0.5 is allowed and degenerates to the median (everything but the
// middle is cut away); above that the trim would be ill-defined.
TrimmedMean::TrimmedMean(std::size_t window, double trim)
    : win_(window), window_(window), trim_(std::clamp(trim, 0.0, 0.5)) {}

std::string TrimmedMean::name() const {
  return "trim_mean(" + std::to_string(window_) + "," +
         std::to_string(static_cast<int>(trim_ * 100)) + "%)";
}

double TrimmedMean::observe(double v) {
  win_.add(v);
  const std::size_t n = win_.size();
  const auto cut = static_cast<std::size_t>(trim_ * static_cast<double>(n));
  const std::size_t lo = cut;
  const std::size_t hi = n - cut;
  if (lo >= hi) {
    // Degenerate trim (everything cut away): fall back to the median under
    // the same nearest-rank rule SlidingMedian applies.
    cached_ = win_.median();
  } else {
    cached_ = win_.range_sum(lo, hi) / static_cast<double>(hi - lo);
  }
  return cached_;
}

std::string ExpSmooth::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "exp(%.2f)", gain_);
  return buf;
}

AdaptiveExpSmooth::AdaptiveExpSmooth(double initial_gain, double min_gain,
                                     double max_gain)
    : gain_(std::clamp(initial_gain, min_gain, max_gain)),
      min_gain_(min_gain),
      max_gain_(max_gain) {}

double AdaptiveExpSmooth::observe(double v) {
  if (!seeded_) {
    value_ = v;
    seeded_ = true;
    return value_;
  }
  const double err = v - value_;
  // Trigg-Leach tracking signal: |smoothed error| / smoothed |error|.
  constexpr double kBeta = 0.2;
  smoothed_err_ = kBeta * err + (1.0 - kBeta) * smoothed_err_;
  smoothed_abs_err_ = kBeta * std::abs(err) + (1.0 - kBeta) * smoothed_abs_err_;
  if (smoothed_abs_err_ > 1e-12) {
    gain_ = std::clamp(std::abs(smoothed_err_ / smoothed_abs_err_), min_gain_,
                       max_gain_);
  }
  value_ = gain_ * v + (1.0 - gain_) * value_;
  return value_;
}

TrendForecaster::TrendForecaster(std::size_t window)
    : window_(window), ring_(window) {
  if (window == 0) throw std::invalid_argument("TrendForecaster: zero window");
}

double TrendForecaster::observe(double v) {
  if (size_ < window_) {
    // Warm-up: the new value lands at index size_ with no eviction.
    ring_[(head_ + size_) % window_] = v;
    sxy_ += static_cast<double>(size_) * v;
    sy_ += v;
    ++size_;
  } else {
    // Slide: drop y_0 (its i*y term is zero), re-index the survivors (every
    // index falls by one, so sxy loses one copy of their sum), append at the
    // back.
    const double oldest = ring_[head_];
    ring_[head_] = v;
    head_ = head_ + 1 == window_ ? 0 : head_ + 1;
    sy_ -= oldest;
    sxy_ -= sy_;
    sy_ += v;
    sxy_ += static_cast<double>(window_ - 1) * v;
  }
  return cached_ = compute();
}

double TrendForecaster::compute() const {
  const std::size_t n = size_;
  if (n == 0) return 0.0;
  if (n == 1) return sy_;
  // Least-squares fit of value against window index; extrapolate one step.
  // sx and sxx depend only on n: sums of 0..n-1 and their squares.
  const auto dn = static_cast<double>(n);
  const double sx = dn * (dn - 1.0) / 2.0;
  const double sxx = (dn - 1.0) * dn * (2.0 * dn - 1.0) / 6.0;
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return sy_ / dn;
  const double slope = (dn * sxy_ - sx * sy_) / denom;
  const double intercept = (sy_ - slope * sx) / dn;
  return intercept + slope * dn;  // next index is n
}

std::vector<std::unique_ptr<Forecaster>> default_battery() {
  std::vector<std::unique_ptr<Forecaster>> b;
  b.push_back(std::make_unique<LastValue>());
  b.push_back(std::make_unique<RunningMean>());
  b.push_back(std::make_unique<SlidingMean>(5));
  b.push_back(std::make_unique<SlidingMean>(10));
  b.push_back(std::make_unique<SlidingMean>(30));
  b.push_back(std::make_unique<SlidingMedian>(5));
  b.push_back(std::make_unique<SlidingMedian>(15));
  b.push_back(std::make_unique<SlidingMedian>(31));
  b.push_back(std::make_unique<TrimmedMean>(30, 0.3));
  b.push_back(std::make_unique<ExpSmooth>(0.05));
  b.push_back(std::make_unique<ExpSmooth>(0.2));
  b.push_back(std::make_unique<ExpSmooth>(0.5));
  b.push_back(std::make_unique<AdaptiveExpSmooth>());
  b.push_back(std::make_unique<TrendForecaster>(10));
  return b;
}

}  // namespace ew
