#include "forecast/forecaster.hpp"

#include <algorithm>
#include <cmath>

namespace ew {

TrimmedMean::TrimmedMean(std::size_t window, double trim)
    : win_(window), window_(window), trim_(std::clamp(trim, 0.0, 0.45)) {}

std::string TrimmedMean::name() const {
  return "trim_mean(" + std::to_string(window_) + "," +
         std::to_string(static_cast<int>(trim_ * 100)) + "%)";
}

double TrimmedMean::predict() const {
  if (win_.empty()) return 0.0;
  std::vector<double> v(win_.values().begin(), win_.values().end());
  std::sort(v.begin(), v.end());
  const auto cut = static_cast<std::size_t>(trim_ * static_cast<double>(v.size()));
  const std::size_t lo = cut;
  const std::size_t hi = v.size() - cut;
  if (lo >= hi) return v[v.size() / 2];
  double s = 0.0;
  for (std::size_t i = lo; i < hi; ++i) s += v[i];
  return s / static_cast<double>(hi - lo);
}

std::string ExpSmooth::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "exp(%.2f)", gain_);
  return buf;
}

AdaptiveExpSmooth::AdaptiveExpSmooth(double initial_gain, double min_gain,
                                     double max_gain)
    : gain_(std::clamp(initial_gain, min_gain, max_gain)),
      min_gain_(min_gain),
      max_gain_(max_gain) {}

void AdaptiveExpSmooth::observe(double v) {
  if (!seeded_) {
    value_ = v;
    seeded_ = true;
    return;
  }
  const double err = v - value_;
  // Trigg-Leach tracking signal: |smoothed error| / smoothed |error|.
  constexpr double kBeta = 0.2;
  smoothed_err_ = kBeta * err + (1.0 - kBeta) * smoothed_err_;
  smoothed_abs_err_ = kBeta * std::abs(err) + (1.0 - kBeta) * smoothed_abs_err_;
  if (smoothed_abs_err_ > 1e-12) {
    gain_ = std::clamp(std::abs(smoothed_err_ / smoothed_abs_err_), min_gain_,
                       max_gain_);
  }
  value_ = gain_ * v + (1.0 - gain_) * value_;
}

double TrendForecaster::predict() const {
  const auto& vals = win_.values();
  const std::size_t n = vals.size();
  if (n == 0) return 0.0;
  if (n == 1) return vals.back();
  // Least-squares fit of value against index; extrapolate one step.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t i = 0;
  for (double v : vals) {
    const auto x = static_cast<double>(i++);
    sx += x;
    sy += v;
    sxx += x * x;
    sxy += x * v;
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return sy / dn;
  const double slope = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;
  return intercept + slope * dn;  // next index is n
}

std::vector<std::unique_ptr<Forecaster>> default_battery() {
  std::vector<std::unique_ptr<Forecaster>> b;
  b.push_back(std::make_unique<LastValue>());
  b.push_back(std::make_unique<RunningMean>());
  b.push_back(std::make_unique<SlidingMean>(5));
  b.push_back(std::make_unique<SlidingMean>(10));
  b.push_back(std::make_unique<SlidingMean>(30));
  b.push_back(std::make_unique<SlidingMedian>(5));
  b.push_back(std::make_unique<SlidingMedian>(15));
  b.push_back(std::make_unique<SlidingMedian>(31));
  b.push_back(std::make_unique<TrimmedMean>(30, 0.3));
  b.push_back(std::make_unique<ExpSmooth>(0.05));
  b.push_back(std::make_unique<ExpSmooth>(0.2));
  b.push_back(std::make_unique<ExpSmooth>(0.5));
  b.push_back(std::make_unique<AdaptiveExpSmooth>());
  b.push_back(std::make_unique<TrendForecaster>(10));
  return b;
}

}  // namespace ew
