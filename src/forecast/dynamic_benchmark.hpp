// Dynamic benchmarking (paper Section 2.2).
//
// "Our strategy was to manually instrument the various EveryWare components
// and application modules with timing primitives, and then passing the
// timing information to the forecasting modules to make predictions."
//
// An EventTag identifies a repetitive program event — the paper used
// (address where the request was serviced, message type of the request).
// EventForecasterBank keeps one AdaptiveForecaster per tag; ScopedEventTimer
// is the timing primitive that feeds it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/clock.hpp"
#include "forecast/selector.hpp"
#include "net/endpoint.hpp"
#include "net/packet.hpp"

namespace ew {

/// Identifier for a benchmarked program event: where it was serviced plus
/// what kind of request it was.
struct EventTag {
  std::string address;  // server contact address (Endpoint::to_string())
  MsgType type = 0;

  static EventTag of(const Endpoint& server, MsgType type) {
    return EventTag{server.to_string(), type};
  }
  [[nodiscard]] std::string to_string() const {
    return address + "/" + std::to_string(type);
  }
  friend bool operator==(const EventTag&, const EventTag&) = default;
};

struct EventTagHash {
  std::size_t operator()(const EventTag& t) const {
    return std::hash<std::string>{}(t.address) * 1000003u ^ t.type;
  }
};

/// One adaptive forecaster per tagged event stream.
class EventForecasterBank {
 public:
  /// Record a measurement (e.g. a request/response round-trip, in
  /// microseconds) for the event.
  void record(const EventTag& tag, double value);

  /// Forecast for the event; Forecast::samples == 0 means never measured.
  [[nodiscard]] Forecast forecast(const EventTag& tag) const;

  [[nodiscard]] std::size_t tracked_events() const { return bank_.size(); }
  [[nodiscard]] bool knows(const EventTag& tag) const { return bank_.contains(tag); }

 private:
  std::unordered_map<EventTag, AdaptiveForecaster, EventTagHash> bank_;
};

/// RAII timing primitive: measures the time from construction to finish()
/// (or destruction) on the supplied clock and records it in the bank.
class ScopedEventTimer {
 public:
  ScopedEventTimer(EventForecasterBank& bank, const Clock& clock, EventTag tag)
      : bank_(bank), clock_(clock), tag_(std::move(tag)), start_(clock.now()) {}
  ~ScopedEventTimer() { finish(); }
  ScopedEventTimer(const ScopedEventTimer&) = delete;
  ScopedEventTimer& operator=(const ScopedEventTimer&) = delete;

  /// Record now; subsequent finish()/destruction does nothing.
  void finish() {
    if (done_) return;
    done_ = true;
    bank_.record(tag_, static_cast<double>(clock_.now() - start_));
  }
  /// Abandon the measurement (event failed; do not pollute the stream).
  void dismiss() { done_ = true; }

 private:
  EventForecasterBank& bank_;
  const Clock& clock_;
  EventTag tag_;
  TimePoint start_;
  bool done_ = false;
};

}  // namespace ew
