// Dynamic benchmarking (paper Section 2.2).
//
// "Our strategy was to manually instrument the various EveryWare components
// and application modules with timing primitives, and then passing the
// timing information to the forecasting modules to make predictions."
//
// An EventTag identifies a repetitive program event — the paper used
// (address where the request was serviced, message type of the request).
// EventForecasterBank keeps one AdaptiveForecaster per tag; ScopedEventTimer
// is the timing primitive that feeds it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "forecast/selector.hpp"
#include "net/endpoint.hpp"
#include "net/packet.hpp"

namespace ew {

/// Identifier for a benchmarked program event: where it was serviced plus
/// what kind of request it was.
struct EventTag {
  std::string address;  // server contact address (Endpoint::to_string())
  MsgType type = 0;

  static EventTag of(const Endpoint& server, MsgType type) {
    return EventTag{server.to_string(), type};
  }
  [[nodiscard]] std::string to_string() const {
    return address + "/" + std::to_string(type);
  }
  friend bool operator==(const EventTag&, const EventTag&) = default;
};

struct EventTagHash {
  std::size_t operator()(const EventTag& t) const {
    return std::hash<std::string>{}(t.address) * 1000003u ^ t.type;
  }
};

/// One adaptive forecaster per tagged event stream.
///
/// A node tracks a small, slowly-growing set of (server, message type)
/// pairs, but records into them on every single RPC — so the map's buckets
/// are pre-reserved to keep the hot path rehash-free, and a whole replayed
/// trace can be absorbed in one call via record_batch.
class EventForecasterBank {
 public:
  /// `expected_events` pre-reserves hash buckets; the default comfortably
  /// covers a node talking to a few dozen servers with a handful of message
  /// types each.
  explicit EventForecasterBank(std::size_t expected_events = 64) {
    bank_.reserve(expected_events);
  }

  /// Record a measurement (e.g. a request/response round-trip, in
  /// microseconds) for the event.
  void record(const EventTag& tag, double value);

  /// Record a whole measurement trace for the event with a single tag
  /// lookup (replayed simulator traces, bulk imports).
  void record_batch(const EventTag& tag, std::span<const double> values);

  /// Forecast for the event; Forecast::samples == 0 means never measured.
  [[nodiscard]] Forecast forecast(const EventTag& tag) const;

  [[nodiscard]] std::size_t tracked_events() const { return bank_.size(); }
  [[nodiscard]] bool knows(const EventTag& tag) const { return bank_.contains(tag); }

 private:
  AdaptiveForecaster& stream(const EventTag& tag);
  std::unordered_map<EventTag, AdaptiveForecaster, EventTagHash> bank_;
};

/// Thread-safe EventForecasterBank for components whose recording paths run
/// concurrently (scheduler, gossip and timeout layers all record into one
/// bank in the threaded deployments). Tags are hashed onto `shards`
/// independently-locked banks, so recorders for different events proceed in
/// parallel instead of serializing on one map-wide lock; the same event tag
/// always lands on the same shard, preserving per-stream ordering.
class ShardedEventForecasterBank {
 public:
  explicit ShardedEventForecasterBank(std::size_t shards = 8,
                                      std::size_t expected_events_per_shard = 16);

  void record(const EventTag& tag, double value);
  void record_batch(const EventTag& tag, std::span<const double> values);
  [[nodiscard]] Forecast forecast(const EventTag& tag) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t tracked_events() const;
  [[nodiscard]] bool knows(const EventTag& tag) const;

 private:
  struct Shard {
    explicit Shard(std::size_t expected) : bank(expected) {}
    mutable std::mutex mu;
    EventForecasterBank bank;
  };
  [[nodiscard]] Shard& shard_for(const EventTag& tag) const;
  // unique_ptr: Shard holds a mutex and must stay address-stable.
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII timing primitive: measures the time from construction to finish()
/// (or destruction) on the supplied clock and records it in the bank.
class ScopedEventTimer {
 public:
  ScopedEventTimer(EventForecasterBank& bank, const Clock& clock, EventTag tag)
      : bank_(bank), clock_(clock), tag_(std::move(tag)), start_(clock.now()) {}
  ~ScopedEventTimer() { finish(); }
  ScopedEventTimer(const ScopedEventTimer&) = delete;
  ScopedEventTimer& operator=(const ScopedEventTimer&) = delete;

  /// Record now; subsequent finish()/destruction does nothing.
  void finish() {
    if (done_) return;
    done_ = true;
    bank_.record(tag_, static_cast<double>(clock_.now() - start_));
  }
  /// Abandon the measurement (event failed; do not pollute the stream).
  void dismiss() { done_ = true; }

 private:
  EventForecasterBank& bank_;
  const Clock& clock_;
  EventTag tag_;
  TimePoint start_;
  bool done_ = false;
};

}  // namespace ew
