#include "forecast/selector.hpp"

#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ew {

AdaptiveForecaster::AdaptiveForecaster(
    std::vector<std::unique_ptr<Forecaster>> battery)
    : battery_(std::move(battery)),
      errors_(battery_.size()),
      predictions_(battery_.size(), 0.0) {
  if (battery_.empty()) {
    throw std::invalid_argument("AdaptiveForecaster: empty battery");
  }
  names_.reserve(battery_.size());
  for (const auto& m : battery_) names_.push_back(m->name());
}

AdaptiveForecaster AdaptiveForecaster::nws_default() {
  return AdaptiveForecaster(default_battery());
}

void AdaptiveForecaster::observe(double value) {
  // Score the cached standing predictions against the new truth, then let
  // each method absorb it; the method's observe() returns the refreshed
  // standing prediction, so the whole pass makes one virtual call per
  // method and recomputes nothing.
  const std::size_t n = battery_.size();
  if (samples_ > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      errors_[i].add(predictions_[i], value);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    predictions_[i] = battery_[i]->observe(value);
  }
  ++samples_;
  if (trace_tag_ != 0) note_method_switch();
}

void AdaptiveForecaster::enable_method_switch_trace(std::uint32_t trace_tag) {
  trace_tag_ = trace_tag;
  last_best_ = best_index();
}

void AdaptiveForecaster::note_method_switch() {
  // Off the untraced hot path: only streams that opted in pay the O(battery)
  // best-index scan per observation.
  const std::size_t best = best_index();
  if (best == last_best_) return;
  const std::size_t prev = last_best_;
  last_best_ = best;
  obs::registry().counter(obs::names::kForecastMethodSwitches).inc();
  obs::trace().record(static_cast<std::int64_t>(samples_),
                      obs::SpanKind::kForecastMethodSwitch, trace_tag_,
                      static_cast<std::int64_t>(prev),
                      static_cast<std::int64_t>(best));
}

void AdaptiveForecaster::observe(std::span<const double> values) {
  for (double v : values) observe(v);
}

std::size_t AdaptiveForecaster::best_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < errors_.size(); ++i) {
    if (errors_[i].mae() < errors_[best].mae()) best = i;
  }
  return best;
}

Forecast AdaptiveForecaster::forecast() const {
  Forecast f;
  f.samples = samples_;
  if (samples_ == 0) return f;
  const std::size_t best = best_index();
  f.value = predictions_[best];
  f.error = errors_[best].mae();
  f.method = names_[best];
  return f;
}

std::vector<double> AdaptiveForecaster::method_mae() const {
  std::vector<double> out;
  out.reserve(errors_.size());
  for (const auto& e : errors_) out.push_back(e.mae());
  return out;
}

std::vector<std::string> AdaptiveForecaster::method_names() const {
  return names_;
}

}  // namespace ew
