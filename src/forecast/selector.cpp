#include "forecast/selector.hpp"

#include <stdexcept>

namespace ew {

AdaptiveForecaster::AdaptiveForecaster(
    std::vector<std::unique_ptr<Forecaster>> battery)
    : battery_(std::move(battery)), errors_(battery_.size()) {
  if (battery_.empty()) {
    throw std::invalid_argument("AdaptiveForecaster: empty battery");
  }
}

AdaptiveForecaster AdaptiveForecaster::nws_default() {
  return AdaptiveForecaster(default_battery());
}

void AdaptiveForecaster::observe(double value) {
  // Score first (each method's standing prediction vs. the new truth),
  // then let the methods see the value.
  if (samples_ > 0) {
    for (std::size_t i = 0; i < battery_.size(); ++i) {
      errors_[i].add(battery_[i]->predict(), value);
    }
  }
  for (auto& m : battery_) m->observe(value);
  ++samples_;
}

std::size_t AdaptiveForecaster::best_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < errors_.size(); ++i) {
    if (errors_[i].mae() < errors_[best].mae()) best = i;
  }
  return best;
}

Forecast AdaptiveForecaster::forecast() const {
  Forecast f;
  f.samples = samples_;
  if (samples_ == 0) return f;
  const std::size_t best = best_index();
  f.value = battery_[best]->predict();
  f.error = errors_[best].mae();
  f.method = battery_[best]->name();
  return f;
}

std::vector<double> AdaptiveForecaster::method_mae() const {
  std::vector<double> out;
  out.reserve(errors_.size());
  for (const auto& e : errors_) out.push_back(e.mae());
  return out;
}

std::vector<std::string> AdaptiveForecaster::method_names() const {
  std::vector<std::string> out;
  out.reserve(battery_.size());
  for (const auto& m : battery_) out.push_back(m->name());
  return out;
}

}  // namespace ew
