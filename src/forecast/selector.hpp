// Adaptive forecaster selection (paper Section 2.2).
//
// The NWS "dynamically chooses the technique that yields the greatest
// forecasting accuracy over time". AdaptiveForecaster runs the whole method
// battery in parallel over one measurement stream; before each observation
// is absorbed, every method is scored on how well it predicted it, and
// predict() answers with the method that currently has the lowest cumulative
// mean absolute error.
//
// Hot-path contract (see DESIGN.md, "Forecasting hot path"): the selector
// caches every method's standing prediction. observe() scores the cached
// predictions against the new truth (plain array reads, no virtual calls)
// and then makes exactly one virtual call per method — observe(), which
// updates the method incrementally and hands back the refreshed standing
// prediction. forecast() is allocation-free: the method name is an interned
// string_view into storage owned by this selector.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "forecast/forecaster.hpp"

namespace ew {

/// A point forecast plus its expected error (the winner's historical MAE).
struct Forecast {
  double value = 0.0;
  double error = 0.0;       // MAE of the selected method so far
  std::size_t samples = 0;  // observations absorbed
  /// Name of the selected method. Interned: views storage owned by the
  /// AdaptiveForecaster that produced it (stable across moves of the
  /// selector); copy into a std::string if the forecast must outlive it.
  std::string_view method;
};

class AdaptiveForecaster {
 public:
  /// Takes ownership of the battery; use nws_default() for the standard set.
  explicit AdaptiveForecaster(std::vector<std::unique_ptr<Forecaster>> battery);

  /// The standard NWS-like battery (forecaster.hpp: default_battery()).
  static AdaptiveForecaster nws_default();

  /// Score all methods against `value`, then absorb it.
  void observe(double value);

  /// Absorb a whole measurement trace (replayed simulator traces, warm-up
  /// runs): same result as calling observe() per element, with one bounds
  /// check and battery sweep set-up per batch instead of per sample.
  void observe(std::span<const double> values);

  /// Best-method forecast of the next value.
  [[nodiscard]] Forecast forecast() const;

  /// Per-method cumulative MAE (parallel to method_names()); for diagnostics
  /// and the forecast-accuracy bench.
  [[nodiscard]] std::vector<double> method_mae() const;
  [[nodiscard]] std::vector<std::string> method_names() const;
  [[nodiscard]] std::size_t samples() const { return samples_; }

  /// Emit an obs kForecastMethodSwitch span (tagged `trace_tag`, an id from
  /// obs::trace().intern) whenever the battery's best method changes.
  /// Off by default; the disabled cost in observe() is one integer compare.
  /// The forecaster is clock-free, so spans are stamped with the sample
  /// index (DESIGN.md §8). Pass 0 to disable again.
  void enable_method_switch_trace(std::uint32_t trace_tag);

 private:
  [[nodiscard]] std::size_t best_index() const;
  void note_method_switch();
  std::vector<std::unique_ptr<Forecaster>> battery_;
  std::vector<ErrorTracker> errors_;
  // Standing predictions, refreshed on every observe; predictions_[i] is
  // exactly battery_[i]->predict() but read without a virtual dispatch.
  std::vector<double> predictions_;
  // Interned method names; forecast().method views into these. The strings
  // are written once at construction and never touched again, so the views
  // survive moves of the selector (the vector's element buffer moves with
  // it).
  std::vector<std::string> names_;
  std::size_t samples_ = 0;
  // Method-switch tracing (0 = off). last_best_ tracks the previously
  // winning method so observe() can detect the regime change itself.
  std::uint32_t trace_tag_ = 0;
  std::size_t last_best_ = 0;
};

}  // namespace ew
