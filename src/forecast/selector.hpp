// Adaptive forecaster selection (paper Section 2.2).
//
// The NWS "dynamically chooses the technique that yields the greatest
// forecasting accuracy over time". AdaptiveForecaster runs the whole method
// battery in parallel over one measurement stream; before each observation
// is absorbed, every method is scored on how well it predicted it, and
// predict() answers with the method that currently has the lowest cumulative
// mean absolute error.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "forecast/forecaster.hpp"

namespace ew {

/// A point forecast plus its expected error (the winner's historical MAE).
struct Forecast {
  double value = 0.0;
  double error = 0.0;        // MAE of the selected method so far
  std::size_t samples = 0;   // observations absorbed
  std::string method;        // name of the selected method
};

class AdaptiveForecaster {
 public:
  /// Takes ownership of the battery; use nws_default() for the standard set.
  explicit AdaptiveForecaster(std::vector<std::unique_ptr<Forecaster>> battery);

  /// The standard NWS-like battery (forecaster.hpp: default_battery()).
  static AdaptiveForecaster nws_default();

  /// Score all methods against `value`, then absorb it.
  void observe(double value);

  /// Best-method forecast of the next value.
  [[nodiscard]] Forecast forecast() const;

  /// Per-method cumulative MAE (parallel to method_names()); for diagnostics
  /// and the forecast-accuracy bench.
  [[nodiscard]] std::vector<double> method_mae() const;
  [[nodiscard]] std::vector<std::string> method_names() const;
  [[nodiscard]] std::size_t samples() const { return samples_; }

 private:
  [[nodiscard]] std::size_t best_index() const;
  std::vector<std::unique_ptr<Forecaster>> battery_;
  std::vector<ErrorTracker> errors_;
  std::size_t samples_ = 0;
};

}  // namespace ew
