#include "forecast/timeout.hpp"

namespace ew {

namespace {
Duration g_static_override = 0;
}

void AdaptiveTimeout::set_global_static_override(Duration value) {
  g_static_override = value;
}

Duration AdaptiveTimeout::global_static_override() { return g_static_override; }

Duration AdaptiveTimeout::timeout(const EventTag& tag) const {
  if (g_static_override > 0) return g_static_override;
  const Forecast f = bank_.forecast(tag);
  if (f.samples == 0) return opts_.initial;
  // forecast + k * expected error; a floor on the error term keeps a
  // perfectly-predicted stream from collapsing to a hair-trigger time-out.
  const double error = std::max(f.error, 0.1 * std::max(f.value, 1.0));
  double raw = f.value + opts_.safety_factor * error;
  // Cover the observed tail: response times are heavy-tailed and a live
  // server answering at its p98 must not be declared dead.
  auto it = tails_.find(tag);
  if (it != tails_.end() && !it->second.empty()) {
    raw = std::max(raw, it->second.quantile(opts_.tail_quantile) * opts_.tail_margin);
  }
  return std::clamp(static_cast<Duration>(raw), opts_.floor, opts_.ceiling);
}

Duration AdaptiveTimeout::observed_quantile(const EventTag& tag, double q) const {
  auto it = tails_.find(tag);
  if (it == tails_.end() || it->second.empty()) return 0;
  return static_cast<Duration>(it->second.quantile(q));
}

void AdaptiveTimeout::on_result(const EventTag& tag, Duration rtt, bool ok) {
  if (ok) {
    bank_.record(tag, static_cast<double>(rtt));
    auto it = tails_.find(tag);
    if (it == tails_.end()) {
      it = tails_.emplace(tag, OrderedWindow(opts_.tail_window)).first;
    }
    it->second.add(static_cast<double>(rtt));
    return;
  }
  // The request never completed, so its true service time is unknown; feed
  // an inflated pseudo-sample so consecutive failures raise the time-out
  // (the paper's alternative — static time-outs — "frequently misjudged the
  // availability" of servers and caused "needless retries").
  const Duration current = timeout(tag);
  bank_.record(tag, opts_.failure_inflation * static_cast<double>(current));
}

}  // namespace ew
