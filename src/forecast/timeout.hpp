// Dynamic time-out discovery (paper Section 2.2).
//
// "By forecasting how quickly a server would respond to each type of
// message, we were able to dynamically adjust the message time-out interval
// to account for ambient network and CPU load conditions. This dynamic
// time-out discovery proved crucial to overall program stability."
//
// AdaptiveTimeout derives a per-(server, message type) time-out from the
// event forecaster bank: forecast + safety_factor * expected error, clamped
// to [floor, ceiling]. Failed requests feed back an inflated pseudo-sample
// so repeated timeouts push the interval up instead of thrashing.
// StaticTimeout is the paper's rejected alternative, kept as the baseline
// for bench/ablation_timeouts.
#pragma once

#include <algorithm>

#include "common/clock.hpp"
#include "forecast/dynamic_benchmark.hpp"

namespace ew {

/// Strategy interface so schedulers/gossips can swap policies (ablation).
class TimeoutPolicy {
 public:
  virtual ~TimeoutPolicy() = default;
  /// Time-out to use for the next request matching `tag`.
  [[nodiscard]] virtual Duration timeout(const EventTag& tag) const = 0;
  /// Report a request outcome: round-trip time and success flag.
  virtual void on_result(const EventTag& tag, Duration rtt, bool ok) = 0;
};

/// Fixed time-out regardless of observed behaviour (the ablation baseline).
class StaticTimeout final : public TimeoutPolicy {
 public:
  explicit StaticTimeout(Duration value) : value_(value) {}
  [[nodiscard]] Duration timeout(const EventTag&) const override { return value_; }
  void on_result(const EventTag&, Duration, bool) override {}

 private:
  Duration value_;
};

/// Forecast-driven time-outs (the paper's approach).
class AdaptiveTimeout final : public TimeoutPolicy {
 public:
  struct Options {
    Duration floor = 50 * kMillisecond;    // never spin-retry faster than this
    Duration ceiling = 60 * kSecond;       // never hang longer than this
    Duration initial = 5 * kSecond;        // before any measurement
    double safety_factor = 4.0;            // multiples of expected error
    double failure_inflation = 2.0;        // pseudo-sample on timeout
    /// Response times are heavy-tailed (queueing); mean + k*MAE alone
    /// misjudges live-but-slow servers. The time-out also covers an
    /// observed high quantile with margin.
    double tail_quantile = 0.98;
    double tail_margin = 2.5;
    std::size_t tail_window = 128;         // samples kept per event tag
  };

  AdaptiveTimeout() : AdaptiveTimeout(Options{}) {}
  explicit AdaptiveTimeout(Options opts) : opts_(opts) {}

  [[nodiscard]] Duration timeout(const EventTag& tag) const override;
  void on_result(const EventTag& tag, Duration rtt, bool ok) override;

  [[nodiscard]] const EventForecasterBank& bank() const { return bank_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Observed RTT quantile for the tag's trailing window, or 0 when the tag
  /// has no successful samples yet. This is the hedging trigger: once a
  /// request outlives the q-quantile of past responses it is probably lost,
  /// and a second attempt is cheaper than waiting out the full time-out.
  [[nodiscard]] Duration observed_quantile(const EventTag& tag, double q) const;

  /// Experiment-wide switch for bench/ablation_timeouts: while set, every
  /// AdaptiveTimeout in the process answers with this fixed value instead of
  /// forecasting — turning the whole toolkit into the paper's rejected
  /// statically-timed-out configuration without rewiring any component.
  /// Pass 0 to restore adaptive behaviour. Not thread-safe by design: the
  /// simulator is single-threaded and scenarios toggle it around runs.
  static void set_global_static_override(Duration value);
  [[nodiscard]] static Duration global_static_override();

  /// RAII guard for the override.
  class StaticOverrideGuard {
   public:
    explicit StaticOverrideGuard(Duration value) { set_global_static_override(value); }
    ~StaticOverrideGuard() { set_global_static_override(0); }
    StaticOverrideGuard(const StaticOverrideGuard&) = delete;
    StaticOverrideGuard& operator=(const StaticOverrideGuard&) = delete;
  };

 private:
  Options opts_;
  EventForecasterBank bank_;
  // Per-tag trailing RTT windows for the tail-quantile term. Ordered
  // incrementally so timeout() reads the quantile in O(1) instead of
  // copying and partially sorting the window on every request.
  mutable std::unordered_map<EventTag, OrderedWindow, EventTagHash> tails_;
};

}  // namespace ew
