file(REMOVE_RECURSE
  "libew_forecast.a"
)
