
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/dynamic_benchmark.cpp" "src/forecast/CMakeFiles/ew_forecast.dir/dynamic_benchmark.cpp.o" "gcc" "src/forecast/CMakeFiles/ew_forecast.dir/dynamic_benchmark.cpp.o.d"
  "/root/repo/src/forecast/forecaster.cpp" "src/forecast/CMakeFiles/ew_forecast.dir/forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/ew_forecast.dir/forecaster.cpp.o.d"
  "/root/repo/src/forecast/selector.cpp" "src/forecast/CMakeFiles/ew_forecast.dir/selector.cpp.o" "gcc" "src/forecast/CMakeFiles/ew_forecast.dir/selector.cpp.o.d"
  "/root/repo/src/forecast/timeout.cpp" "src/forecast/CMakeFiles/ew_forecast.dir/timeout.cpp.o" "gcc" "src/forecast/CMakeFiles/ew_forecast.dir/timeout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ew_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
