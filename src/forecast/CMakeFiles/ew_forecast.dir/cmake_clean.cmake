file(REMOVE_RECURSE
  "CMakeFiles/ew_forecast.dir/dynamic_benchmark.cpp.o"
  "CMakeFiles/ew_forecast.dir/dynamic_benchmark.cpp.o.d"
  "CMakeFiles/ew_forecast.dir/forecaster.cpp.o"
  "CMakeFiles/ew_forecast.dir/forecaster.cpp.o.d"
  "CMakeFiles/ew_forecast.dir/selector.cpp.o"
  "CMakeFiles/ew_forecast.dir/selector.cpp.o.d"
  "CMakeFiles/ew_forecast.dir/timeout.cpp.o"
  "CMakeFiles/ew_forecast.dir/timeout.cpp.o.d"
  "libew_forecast.a"
  "libew_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
