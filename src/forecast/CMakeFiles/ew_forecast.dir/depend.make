# Empty dependencies file for ew_forecast.
# This may be replaced when dependencies are built.
