// NWS-style time-series forecasting methods (paper Section 2.2).
//
// The Network Weather Service applies "a set of light-weight time series
// forecasting methods" to each measurement stream and dynamically selects
// whichever has been most accurate (selector.hpp). This file implements the
// method battery. Because at SC98 forecasts were made inline on every
// request/response event, every method here is **fully incremental**: state
// is updated in O(1)–O(log w) per observation and the standing prediction is
// maintained alongside it, so predict() is always an O(1) read of cached
// state — no method re-derives its forecast from the raw window. observe()
// returns the refreshed standing prediction so the adaptive selector can run
// its scoring pass without a second round of virtual calls (see DESIGN.md,
// "Forecasting hot path").
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace ew {

/// One forecasting method over a scalar measurement stream.
/// Streams are NaN-free by contract (dynamic benchmarking records elapsed
/// times and rates, never missing values).
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// Stable identifier used in logs and EXPERIMENTS.md tables.
  [[nodiscard]] virtual std::string name() const = 0;
  /// Incorporate the next observed value and return the updated standing
  /// prediction (identical to what predict() returns afterwards).
  virtual double observe(double value) = 0;
  /// Prediction of the next value. Before any observation, returns 0.
  /// Always O(1): implementations cache their standing prediction.
  [[nodiscard]] virtual double predict() const = 0;
};

/// Predicts the most recent observation ("LAST" in NWS).
class LastValue final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "last"; }
  double observe(double v) override { return last_ = v; }
  [[nodiscard]] double predict() const override { return last_; }

 private:
  double last_ = 0.0;
};

/// Running mean over the entire history ("RUN_AVG").
class RunningMean final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "run_avg"; }
  double observe(double v) override {
    stats_.add(v);
    return stats_.mean();
  }
  [[nodiscard]] double predict() const override { return stats_.mean(); }

 private:
  RunningStats stats_;
};

/// Mean over the trailing `window` observations ("SW_AVG(k)").
/// O(1) via the window's running sum.
class SlidingMean final : public Forecaster {
 public:
  explicit SlidingMean(std::size_t window) : win_(window), window_(window) {}
  [[nodiscard]] std::string name() const override {
    return "sw_avg(" + std::to_string(window_) + ")";
  }
  double observe(double v) override {
    win_.add(v);
    return win_.mean();
  }
  [[nodiscard]] double predict() const override { return win_.mean(); }

 private:
  SlidingWindow win_;
  std::size_t window_;
};

/// Median over the trailing `window` observations ("MEDIAN(k)").
/// Robust to the load spikes that dominated SC98 response times.
/// Incremental: O(log w) insert/evict into an ordered window, O(1) median
/// read. The median is nearest-rank (lower middle element at even sizes),
/// bit-identical to the naive sort-based battery at every window size.
class SlidingMedian final : public Forecaster {
 public:
  explicit SlidingMedian(std::size_t window) : win_(window), window_(window) {}
  [[nodiscard]] std::string name() const override {
    return "median(" + std::to_string(window_) + ")";
  }
  double observe(double v) override {
    win_.add(v);
    return win_.median();
  }
  [[nodiscard]] double predict() const override {
    return win_.empty() ? 0.0 : win_.median();
  }

 private:
  OrderedWindow win_;
  std::size_t window_;
};

/// Trimmed mean: drop the top/bottom `trim` fraction, average the rest.
/// Maintained from the same ordered window as the median: each observe is
/// one O(log w) insert/evict plus a short sum over the surviving middle
/// ranks, cached as the standing prediction. When the trim consumes the
/// whole window (trim = 0.5 at even sizes), the prediction degenerates to
/// the median — the same nearest-rank rule SlidingMedian uses — instead of
/// an arbitrary order statistic (the naive version returned the *upper*
/// middle element there, disagreeing with the median at even sizes).
class TrimmedMean final : public Forecaster {
 public:
  TrimmedMean(std::size_t window, double trim);
  [[nodiscard]] std::string name() const override;
  double observe(double v) override;
  [[nodiscard]] double predict() const override { return cached_; }

 private:
  OrderedWindow win_;
  std::size_t window_;
  double trim_;
  double cached_ = 0.0;
};

/// Exponential smoothing with fixed gain ("EXP_SMOOTH(g)").
class ExpSmooth final : public Forecaster {
 public:
  explicit ExpSmooth(double gain) : gain_(gain) {}
  [[nodiscard]] std::string name() const override;
  double observe(double v) override {
    value_ = seeded_ ? gain_ * v + (1.0 - gain_) * value_ : v;
    seeded_ = true;
    return value_;
  }
  [[nodiscard]] double predict() const override { return value_; }

 private:
  double gain_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Exponential smoothing whose gain adapts: when the forecast is doing badly
/// the gain grows (track faster), when it is doing well the gain shrinks
/// (smooth harder) — the NWS "adaptive gain" trick.
class AdaptiveExpSmooth final : public Forecaster {
 public:
  AdaptiveExpSmooth(double initial_gain = 0.2, double min_gain = 0.05,
                    double max_gain = 0.95);
  [[nodiscard]] std::string name() const override { return "adapt_exp"; }
  double observe(double v) override;
  [[nodiscard]] double predict() const override { return value_; }
  [[nodiscard]] double gain() const { return gain_; }

 private:
  double gain_;
  double min_gain_;
  double max_gain_;
  double value_ = 0.0;
  double smoothed_err_ = 0.0;
  double smoothed_abs_err_ = 0.0;
  bool seeded_ = false;
};

/// Linear trend over the trailing window (least-squares slope extrapolation).
/// O(1) per observation: the index/value cross sums are rolled forward when
/// the window slides instead of being rebuilt from the raw values.
class TrendForecaster final : public Forecaster {
 public:
  explicit TrendForecaster(std::size_t window);
  [[nodiscard]] std::string name() const override {
    return "trend(" + std::to_string(window_) + ")";
  }
  double observe(double v) override;
  [[nodiscard]] double predict() const override { return cached_; }

 private:
  [[nodiscard]] double compute() const;
  std::size_t window_;
  std::vector<double> ring_;  // arrival order, ring buffer
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double sy_ = 0.0;   // sum of y_i over the window
  double sxy_ = 0.0;  // sum of i * y_i, i = 0 at the window's oldest element
  double cached_ = 0.0;
};

/// The default NWS-like battery used throughout the toolkit.
std::vector<std::unique_ptr<Forecaster>> default_battery();

}  // namespace ew
