// NWS-style time-series forecasting methods (paper Section 2.2).
//
// The Network Weather Service applies "a set of light-weight time series
// forecasting methods" to each measurement stream and dynamically selects
// whichever has been most accurate (selector.hpp). This file implements the
// method battery: each Forecaster consumes observations one at a time and
// produces a prediction of the next value in O(1)–O(window) time, because at
// SC98 forecasts were made inline on every request/response event.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace ew {

/// One forecasting method over a scalar measurement stream.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// Stable identifier used in logs and EXPERIMENTS.md tables.
  [[nodiscard]] virtual std::string name() const = 0;
  /// Incorporate the next observed value.
  virtual void observe(double value) = 0;
  /// Prediction of the next value. Before any observation, returns 0.
  [[nodiscard]] virtual double predict() const = 0;
};

/// Predicts the most recent observation ("LAST" in NWS).
class LastValue final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "last"; }
  void observe(double v) override { last_ = v; }
  [[nodiscard]] double predict() const override { return last_; }

 private:
  double last_ = 0.0;
};

/// Running mean over the entire history ("RUN_AVG").
class RunningMean final : public Forecaster {
 public:
  [[nodiscard]] std::string name() const override { return "run_avg"; }
  void observe(double v) override { stats_.add(v); }
  [[nodiscard]] double predict() const override { return stats_.mean(); }

 private:
  RunningStats stats_;
};

/// Mean over the trailing `window` observations ("SW_AVG(k)").
class SlidingMean final : public Forecaster {
 public:
  explicit SlidingMean(std::size_t window) : win_(window), window_(window) {}
  [[nodiscard]] std::string name() const override {
    return "sw_avg(" + std::to_string(window_) + ")";
  }
  void observe(double v) override { win_.add(v); }
  [[nodiscard]] double predict() const override { return win_.mean(); }

 private:
  SlidingWindow win_;
  std::size_t window_;
};

/// Median over the trailing `window` observations ("MEDIAN(k)").
/// Robust to the load spikes that dominated SC98 response times.
class SlidingMedian final : public Forecaster {
 public:
  explicit SlidingMedian(std::size_t window) : win_(window), window_(window) {}
  [[nodiscard]] std::string name() const override {
    return "median(" + std::to_string(window_) + ")";
  }
  void observe(double v) override { win_.add(v); }
  [[nodiscard]] double predict() const override {
    return win_.empty() ? 0.0 : win_.median();
  }

 private:
  SlidingWindow win_;
  std::size_t window_;
};

/// Trimmed mean: drop the top/bottom `trim` fraction, average the rest.
class TrimmedMean final : public Forecaster {
 public:
  TrimmedMean(std::size_t window, double trim);
  [[nodiscard]] std::string name() const override;
  void observe(double v) override { win_.add(v); }
  [[nodiscard]] double predict() const override;

 private:
  SlidingWindow win_;
  std::size_t window_;
  double trim_;
};

/// Exponential smoothing with fixed gain ("EXP_SMOOTH(g)").
class ExpSmooth final : public Forecaster {
 public:
  explicit ExpSmooth(double gain) : gain_(gain) {}
  [[nodiscard]] std::string name() const override;
  void observe(double v) override {
    value_ = seeded_ ? gain_ * v + (1.0 - gain_) * value_ : v;
    seeded_ = true;
  }
  [[nodiscard]] double predict() const override { return value_; }

 private:
  double gain_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Exponential smoothing whose gain adapts: when the forecast is doing badly
/// the gain grows (track faster), when it is doing well the gain shrinks
/// (smooth harder) — the NWS "adaptive gain" trick.
class AdaptiveExpSmooth final : public Forecaster {
 public:
  AdaptiveExpSmooth(double initial_gain = 0.2, double min_gain = 0.05,
                    double max_gain = 0.95);
  [[nodiscard]] std::string name() const override { return "adapt_exp"; }
  void observe(double v) override;
  [[nodiscard]] double predict() const override { return value_; }
  [[nodiscard]] double gain() const { return gain_; }

 private:
  double gain_;
  double min_gain_;
  double max_gain_;
  double value_ = 0.0;
  double smoothed_err_ = 0.0;
  double smoothed_abs_err_ = 0.0;
  bool seeded_ = false;
};

/// Linear trend over the trailing window (least-squares slope extrapolation).
class TrendForecaster final : public Forecaster {
 public:
  explicit TrendForecaster(std::size_t window) : win_(window), window_(window) {}
  [[nodiscard]] std::string name() const override {
    return "trend(" + std::to_string(window_) + ")";
  }
  void observe(double v) override { win_.add(v); }
  [[nodiscard]] double predict() const override;

 private:
  SlidingWindow win_;
  std::size_t window_;
};

/// The default NWS-like battery used throughout the toolkit.
std::vector<std::unique_ptr<Forecaster>> default_battery();

}  // namespace ew
