#include "forecast/dynamic_benchmark.hpp"

#include "obs/trace.hpp"

namespace ew {

AdaptiveForecaster& EventForecasterBank::stream(const EventTag& tag) {
  auto it = bank_.find(tag);
  if (it == bank_.end()) {
    it = bank_.emplace(tag, AdaptiveForecaster::nws_default()).first;
    // When tracing is on, new event streams report their method switches
    // under their dynamic-benchmarking tag so regime changes in the
    // forecast join against the call spans they caused.
    if (obs::trace().enabled()) {
      it->second.enable_method_switch_trace(
          obs::trace().intern(tag.to_string()));
    }
  }
  return it->second;
}

void EventForecasterBank::record(const EventTag& tag, double value) {
  stream(tag).observe(value);
}

void EventForecasterBank::record_batch(const EventTag& tag,
                                       std::span<const double> values) {
  if (values.empty()) return;
  stream(tag).observe(values);
}

Forecast EventForecasterBank::forecast(const EventTag& tag) const {
  auto it = bank_.find(tag);
  if (it == bank_.end()) return Forecast{};
  return it->second.forecast();
}

ShardedEventForecasterBank::ShardedEventForecasterBank(
    std::size_t shards, std::size_t expected_events_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(expected_events_per_shard));
  }
}

ShardedEventForecasterBank::Shard& ShardedEventForecasterBank::shard_for(
    const EventTag& tag) const {
  return *shards_[EventTagHash{}(tag) % shards_.size()];
}

void ShardedEventForecasterBank::record(const EventTag& tag, double value) {
  Shard& s = shard_for(tag);
  std::lock_guard<std::mutex> lock(s.mu);
  s.bank.record(tag, value);
}

void ShardedEventForecasterBank::record_batch(const EventTag& tag,
                                              std::span<const double> values) {
  Shard& s = shard_for(tag);
  std::lock_guard<std::mutex> lock(s.mu);
  s.bank.record_batch(tag, values);
}

Forecast ShardedEventForecasterBank::forecast(const EventTag& tag) const {
  Shard& s = shard_for(tag);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.bank.forecast(tag);
}

std::size_t ShardedEventForecasterBank::tracked_events() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->bank.tracked_events();
  }
  return n;
}

bool ShardedEventForecasterBank::knows(const EventTag& tag) const {
  Shard& s = shard_for(tag);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.bank.knows(tag);
}

}  // namespace ew
