#include "forecast/dynamic_benchmark.hpp"

namespace ew {

void EventForecasterBank::record(const EventTag& tag, double value) {
  auto it = bank_.find(tag);
  if (it == bank_.end()) {
    it = bank_.emplace(tag, AdaptiveForecaster::nws_default()).first;
  }
  it->second.observe(value);
}

Forecast EventForecasterBank::forecast(const EventTag& tag) const {
  auto it = bank_.find(tag);
  if (it == bank_.end()) return Forecast{};
  return it->second.forecast();
}

}  // namespace ew
