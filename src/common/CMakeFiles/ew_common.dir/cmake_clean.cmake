file(REMOVE_RECURSE
  "CMakeFiles/ew_common.dir/clock.cpp.o"
  "CMakeFiles/ew_common.dir/clock.cpp.o.d"
  "CMakeFiles/ew_common.dir/log.cpp.o"
  "CMakeFiles/ew_common.dir/log.cpp.o.d"
  "CMakeFiles/ew_common.dir/serialize.cpp.o"
  "CMakeFiles/ew_common.dir/serialize.cpp.o.d"
  "CMakeFiles/ew_common.dir/stats.cpp.o"
  "CMakeFiles/ew_common.dir/stats.cpp.o.d"
  "CMakeFiles/ew_common.dir/stats_simd.cpp.o"
  "CMakeFiles/ew_common.dir/stats_simd.cpp.o.d"
  "libew_common.a"
  "libew_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
