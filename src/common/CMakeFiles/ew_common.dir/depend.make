# Empty dependencies file for ew_common.
# This may be replaced when dependencies are built.
