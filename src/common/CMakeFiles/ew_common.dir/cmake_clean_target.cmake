file(REMOVE_RECURSE
  "libew_common.a"
)
