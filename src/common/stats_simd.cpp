// AVX2 build of the OrderedWindow steady-state kernel. This translation
// unit is the only one compiled with -mavx2 (see CMakeLists.txt); the rest
// of the library stays at the baseline ISA and stats.cpp dispatches here at
// load time only when the CPU reports AVX2. The algorithm is the same
// branchless two-sweep rebuild as steady_add_generic — fused rank count,
// then a fixed-trip blend into the spare buffer — just four lanes wide, so
// read that function first. Results are bit-identical: both kernels only
// move values, never compute with them.
#include "common/stats.hpp"

#if defined(EW_ORDERED_WINDOW_AVX2)

#include <immintrin.h>

#include <cstdint>

namespace ew {

void detail::OrderedWindowKernels::steady_add_avx2(OrderedWindow& w,
                                                   double x) {
  const double evicted = w.fifo_[w.head_];
  w.fifo_[w.head_] = x;
  w.head_ = w.head_ + 1 == w.capacity_ ? 0 : w.head_ + 1;
  const double* const in = w.sorted_mut();
  double* const out = w.spare_mut();
  const std::size_t n = w.size_;

  // Sweep 1: fused rank count.
  const __m256d va = _mm256_set1_pd(evicted);
  const __m256d vb = _mm256_set1_pd(x);
  __m256i clt = _mm256_setzero_si256();
  __m256i cle = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(in + i);
    clt = _mm256_sub_epi64(clt,
                           _mm256_castpd_si256(_mm256_cmp_pd(v, va, _CMP_LT_OQ)));
    cle = _mm256_sub_epi64(cle,
                           _mm256_castpd_si256(_mm256_cmp_pd(v, vb, _CMP_LE_OQ)));
  }
  const __m128i hlt = _mm_add_epi64(_mm256_castsi256_si128(clt),
                                    _mm256_extracti128_si256(clt, 1));
  const __m128i hle = _mm_add_epi64(_mm256_castsi256_si128(cle),
                                    _mm256_extracti128_si256(cle, 1));
  std::size_t epos = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_add_epi64(hlt, _mm_unpackhi_epi64(hlt, hlt))));
  std::size_t ipos = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_add_epi64(hle, _mm_unpackhi_epi64(hle, hle))));
  for (; i < n; ++i) {
    epos += in[i] < evicted ? 1u : 0u;
    ipos += in[i] <= x ? 1u : 0u;
  }

  // Sweep 2: fixed-trip rebuild into the spare buffer.
  const bool leftward = epos < ipos;
  const std::ptrdiff_t d = leftward ? 1 : -1;
  const std::size_t lo = leftward ? epos : ipos + 1;
  const std::size_t hi = leftward ? ipos - 1 : epos + 1;
  const std::size_t slot = leftward ? ipos - 1 : ipos;
  const __m256d vlo = _mm256_set1_pd(static_cast<double>(lo));
  const __m256d vhi = _mm256_set1_pd(static_cast<double>(hi));
  __m256d iota = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256d four = _mm256_set1_pd(4.0);
  for (std::size_t j = 0; j < n; j += 4) {
    const __m256d plain = _mm256_loadu_pd(in + j);
    const __m256d shifted = _mm256_loadu_pd(in + j + d);
    const __m256d m = _mm256_and_pd(_mm256_cmp_pd(iota, vlo, _CMP_GE_OQ),
                                    _mm256_cmp_pd(iota, vhi, _CMP_LT_OQ));
    _mm256_storeu_pd(out + j, _mm256_blendv_pd(plain, shifted, m));
    iota = _mm256_add_pd(iota, four);
  }
  out[slot] = x;
  w.flip_ = !w.flip_;
}

}  // namespace ew

#endif  // EW_ORDERED_WINDOW_AVX2
