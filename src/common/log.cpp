#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace ew {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
Log::Sink& sink_storage() {
  static Log::Sink sink;
  return sink;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

// The default sink. Untagged records render exactly the historical
// "[LVL] message" stderr line; a component prefixes "component: ".
void render_stderr(const Log::Record& rec) {
  if (rec.component.empty()) {
    std::fprintf(stderr, "[%s] %s\n", level_name(rec.level),
                 rec.message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(rec.level),
                 rec.component.c_str(), rec.message.c_str());
  }
}
}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }
LogLevel Log::level() { return g_level.load(); }

void Log::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void Log::write(Record rec) {
  if (static_cast<int>(rec.level) < static_cast<int>(g_level.load())) return;
  std::lock_guard lock(g_sink_mutex);
  if (auto& sink = sink_storage()) {
    sink(rec);
  } else {
    render_stderr(rec);
  }
}

void Log::write(LogLevel level, const std::string& msg) {
  write(Record{level, {}, msg, {}});
}

}  // namespace ew
