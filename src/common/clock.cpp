#include "common/clock.hpp"

#include <chrono>
#include <stdexcept>

namespace ew {

namespace {
std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealClock::RealClock() : epoch_ns_(steady_ns()) {}

TimePoint RealClock::now() const { return (steady_ns() - epoch_ns_) / 1000; }

void VirtualClock::advance(Duration d) {
  if (d < 0) throw std::invalid_argument("VirtualClock::advance: negative duration");
  now_ += d;
}

void VirtualClock::set(TimePoint t) {
  if (t < now_) throw std::invalid_argument("VirtualClock::set: time moved backwards");
  now_ = t;
}

}  // namespace ew
