// Lightweight Result<T> for fallible operations on the network path.
//
// The paper's lingua franca treats communication failure as an expected,
// frequent event (hosts are reclaimed, networks partition). Exceptions are
// reserved for programming errors and API misuse; socket-level and protocol
// failures travel through Result so the callers that must react to them
// (retry, re-register, pick another server) handle them explicitly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace ew {

/// Failure categories surfaced by the networking and protocol layers.
enum class Err {
  kOk = 0,
  kTimeout,       // operation did not complete within its (dynamic) time-out
  kClosed,        // peer closed the connection / component deregistered
  kRefused,       // connection refused / endpoint unreachable
  kProtocol,      // malformed packet, bad magic, version mismatch
  kUnavailable,   // resource reclaimed or infrastructure down
  kRejected,      // request understood but denied (e.g. sanity check failed)
  kInternal,      // OS error or invariant failure
  kPeerDown,      // local process crashed / peer process known dead
  kOverloaded,    // backpressure: local queue/outbox full, retry after backoff
};

/// Human-readable label for an error code.
const char* err_name(Err e);

/// Wire encoding of Err for the 1-byte response status (net/node.hpp).
/// Responder::fail carries the code to the caller so retry policy can
/// distinguish retryable transport failures from application rejections;
/// kOk is not a failure and maps to kInternal rather than faking success.
inline std::uint8_t err_to_wire(Err e) {
  if (e == Err::kOk) e = Err::kInternal;
  return static_cast<std::uint8_t>(e);
}

/// Decode a wire status byte. Bytes outside the enum (a newer or corrupted
/// peer) degrade to kInternal instead of minting an unnamed Err value.
inline Err err_from_wire(std::uint8_t code) {
  if (code == 0 || code > static_cast<std::uint8_t>(Err::kOverloaded)) {
    return Err::kInternal;
  }
  return static_cast<Err>(code);
}

/// Error value: a category plus free-form context.
struct Error {
  Err code = Err::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(err_name(code)) + (message.empty() ? "" : ": " + message);
  }
};

inline const char* err_name(Err e) {
  switch (e) {
    case Err::kOk: return "ok";
    case Err::kTimeout: return "timeout";
    case Err::kClosed: return "closed";
    case Err::kRefused: return "refused";
    case Err::kProtocol: return "protocol";
    case Err::kUnavailable: return "unavailable";
    case Err::kRejected: return "rejected";
    case Err::kInternal: return "internal";
    case Err::kPeerDown: return "peer_down";
    case Err::kOverloaded: return "overloaded";
  }
  return "unknown";
}

/// Expected-like container: either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}       // NOLINT(google-explicit-constructor)
  Result(Err code, std::string msg = {}) : v_(Error{code, std::move(msg)}) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  /// Access the value; throws std::logic_error if this holds an error.
  T& value() {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(v_);
  }
  const T& value() const {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Access the error; throws std::logic_error if this holds a value.
  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<Error>(v_);
  }
  [[nodiscard]] Err code() const { return ok() ? Err::kOk : error().code; }

  /// Value or a fallback if this holds an error.
  T value_or(T fallback) const { return ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

/// Result specialisation for operations with no payload.
class Status {
 public:
  Status() = default;                                  // success
  Status(Error error) : err_(std::move(error)) {}      // NOLINT(google-explicit-constructor)
  Status(Err code, std::string msg = {}) : err_(Error{code, std::move(msg)}) {}

  [[nodiscard]] bool ok() const { return err_.code == Err::kOk; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] Err code() const { return err_.code; }
  [[nodiscard]] const Error& error() const { return err_; }
  [[nodiscard]] std::string to_string() const { return ok() ? "ok" : err_.to_string(); }

 private:
  Error err_{Err::kOk, {}};
};

}  // namespace ew
