// Byte-order-safe serialization for the lingua franca.
//
// The paper deliberately avoided XDR "for fear that it would not be readily
// available in all environments" (Section 2.1) and hand-rolled a portable
// encoding instead. We do the same: all multi-byte integers are written
// little-endian byte-by-byte, floats travel as IEEE-754 bit patterns, and
// strings/blobs are length-prefixed. Reader performs strict bounds checking
// so malformed packets from the wire can never read out of range.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ew {

/// Raw byte buffer used throughout the messaging stack.
using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte buffer in a fixed wire format.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) UTF-8/opaque string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed (u32) opaque byte blob.
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw bytes with no length prefix (caller manages framing).
  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Overwrite 4 already-written bytes at `offset` (little-endian). Lets a
  /// single-pass encoder leave a placeholder for a value — a checksum, a
  /// length — that is only known after the bytes it covers are written.
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
      buf_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked reader over a byte span. All accessors return Result so
/// that truncated or malicious packets surface as Err::kProtocol, never UB.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int32_t> i32();
  Result<std::int64_t> i64();
  Result<double> f64();
  Result<bool> boolean();
  /// Length-prefixed string (rejects lengths beyond the remaining bytes).
  Result<std::string> str();
  /// Length-prefixed blob.
  Result<Bytes> blob();
  /// Exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);

  /// Zero-copy view of the unread tail (does not consume). Valid as long as
  /// the bytes the Reader was constructed over.
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return data_.subspan(pos_);
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  template <typename T>
  Result<T> read_le();
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ew
