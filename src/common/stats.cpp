#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ew {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  return mean_ == 0.0 ? 0.0 : stddev() / std::abs(mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindow: zero capacity");
}

void SlidingWindow::add(double x) {
  if (buf_.size() == capacity_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
  buf_.push_back(x);
  sum_ += x;
}

double SlidingWindow::mean() const {
  if (buf_.empty()) return 0.0;
  return sum_ / static_cast<double>(buf_.size());
}

// Nearest-rank (the lower middle element for even sizes), matching
// OrderedWindow::median and the degenerate-trim fallback of TrimmedMean so
// every median in the toolkit agrees on the same definition.
double SlidingWindow::median() const { return quantile(0.5); }

double SlidingWindow::quantile(double q) const {
  if (buf_.empty()) throw std::logic_error("SlidingWindow::quantile: empty window");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(buf_.begin(), buf_.end());
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(v.size())),
                       static_cast<double>(v.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

OrderedWindow::OrderedWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("OrderedWindow: zero capacity");
  fifo_.resize(capacity);
  bufa_.resize(capacity + kFront + kBack);
  bufb_.resize(capacity + kFront + kBack);
}

namespace {

// The steady-state kernel variant chosen for this CPU, picked once at load
// time. The AVX2 translation unit exists only where the compiler could
// build it; __builtin_cpu_supports keeps the generic binary runnable on any
// x86-64.
using SteadyFn = void (*)(OrderedWindow&, double);

SteadyFn pick_steady_kernel() {
#if defined(EW_ORDERED_WINDOW_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    return &detail::OrderedWindowKernels::steady_add_avx2;
  }
#endif
  return &detail::OrderedWindowKernels::steady_add_generic;
}

const SteadyFn g_steady_kernel = pick_steady_kernel();

}  // namespace

void OrderedWindow::add(double x) {
  assert(!std::isnan(x) && "OrderedWindow requires NaN-free input");
  if (size_ == capacity_ && capacity_ <= kScanThreshold) {
    g_steady_kernel(*this, x);  // the hot path: every battery window
  } else if (size_ < capacity_) {
    add_warmup(x);
  } else {
    add_large(x);
  }
}

void OrderedWindow::add_warmup(double x) {
  // head_ is 0 until the first eviction, so the arrival slot is just size_.
  fifo_[size_] = x;
  double* const base = sorted_mut();
  // Insertion point: first element > x, so equal runs keep arrival order.
  std::size_t ipos;
  if (size_ > kScanThreshold) {
    ipos = static_cast<std::size_t>(std::upper_bound(base, base + size_, x) -
                                    base);
  } else {
    ipos = 0;
    for (std::size_t i = 0; i < size_; ++i) ipos += base[i] <= x ? 1u : 0u;
  }
  std::memmove(base + ipos + 1, base + ipos, (size_ - ipos) * sizeof(double));
  base[ipos] = x;
  ++size_;
}

void OrderedWindow::add_large(double x) {
  const double evicted = fifo_[head_];
  fifo_[head_] = x;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  // O(log w): locate the evicted element and the insertion slot with binary
  // searches, then close the gap between them with a single memmove.
  double* const base = sorted_mut();
  const auto epos = static_cast<std::size_t>(
      std::lower_bound(base, base + size_, evicted) - base);
  const auto ipos = static_cast<std::size_t>(
      std::upper_bound(base, base + size_, x) - base);
  if (epos < ipos) {
    std::memmove(base + epos, base + epos + 1, (ipos - 1 - epos) * sizeof(double));
    base[ipos - 1] = x;
  } else {
    std::memmove(base + ipos + 1, base + ipos, (epos - ipos) * sizeof(double));
    base[ipos] = x;
  }
}

// Steady-state slide for small windows, portable flavour (SSE2 on x86-64,
// scalar elsewhere). Algorithm, in both flavours and in the AVX2 unit:
//
//  1. One fused sweep over the sorted array counts `epos` (elements < the
//     evicted value — its lower_bound index) and `ipos` (elements <= the new
//     value — its upper_bound index). Compares accumulate lane masks, so a
//     random stream costs exactly what a sorted one does.
//  2. A second fixed-trip sweep rebuilds the array into the spare buffer:
//     out[j] = x at the insertion slot, in[j +- 1] inside the span between
//     the two positions, in[j] outside it — selected by rank masks, never by
//     branches. The buffers then swap roles (flip_).
//
// Rationale: with random data, both the shift direction and the shift length
// of the classic in-place gap close are coin flips, costing two pipeline
// flushes per observation — which also stops the CPU overlapping the four
// ordered windows the default battery updates back to back. The fixed-trip
// rebuild is pure data movement (bit-identical results) with zero
// mispredictions and runs ~1.5x faster across the battery despite touching
// more elements.
void detail::OrderedWindowKernels::steady_add_generic(OrderedWindow& w,
                                                      double x) {
  const double evicted = w.fifo_[w.head_];
  w.fifo_[w.head_] = x;
  w.head_ = w.head_ + 1 == w.capacity_ ? 0 : w.head_ + 1;
  const double* const in = w.sorted_mut();
  double* const out = w.spare_mut();
  const std::size_t n = w.size_;
  std::size_t epos;
  std::size_t ipos;
#if defined(__SSE2__)
  {
    const __m128d va = _mm_set1_pd(evicted);
    const __m128d vb = _mm_set1_pd(x);
    __m128i clt = _mm_setzero_si128();
    __m128i cle = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const __m128d v = _mm_loadu_pd(in + i);
      clt = _mm_sub_epi64(clt, _mm_castpd_si128(_mm_cmplt_pd(v, va)));
      cle = _mm_sub_epi64(cle, _mm_castpd_si128(_mm_cmple_pd(v, vb)));
    }
    // In-register horizontal sums (a store/reload would put a
    // store-forwarding round trip on every observation's critical path).
    epos = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_add_epi64(clt, _mm_unpackhi_epi64(clt, clt))));
    ipos = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_add_epi64(cle, _mm_unpackhi_epi64(cle, cle))));
    for (; i < n; ++i) {
      epos += in[i] < evicted ? 1u : 0u;
      ipos += in[i] <= x ? 1u : 0u;
    }
  }
#else
  {
    std::size_t lt = 0, le = 0;
    for (std::size_t i = 0; i < n; ++i) {
      lt += in[i] < evicted ? 1u : 0u;
      le += in[i] <= x ? 1u : 0u;
    }
    epos = lt;
    ipos = le;
  }
#endif
  // Rebuild plan: removing rank epos and inserting at slot shifts exactly
  // the span between them by one, direction given by which side the
  // insertion lands on. All four parameters come from conditional moves.
  const bool leftward = epos < ipos;
  const std::ptrdiff_t d = leftward ? 1 : -1;
  const std::size_t lo = leftward ? epos : ipos + 1;   // first shifted index
  const std::size_t hi = leftward ? ipos - 1 : epos + 1;  // one past last
  const std::size_t slot = leftward ? ipos - 1 : ipos;
#if defined(__SSE2__)
  const __m128d vlo = _mm_set1_pd(static_cast<double>(lo));
  const __m128d vhi = _mm_set1_pd(static_cast<double>(hi));
  __m128d iota = _mm_set_pd(1.0, 0.0);
  const __m128d two = _mm_set1_pd(2.0);
  for (std::size_t j = 0; j < n; j += 2) {
    const __m128d plain = _mm_loadu_pd(in + j);
    const __m128d shifted = _mm_loadu_pd(in + j + d);
    const __m128d m =
        _mm_and_pd(_mm_cmpge_pd(iota, vlo), _mm_cmplt_pd(iota, vhi));
    _mm_storeu_pd(out + j,
                  _mm_or_pd(_mm_and_pd(m, shifted), _mm_andnot_pd(m, plain)));
    iota = _mm_add_pd(iota, two);
  }
#else
  for (std::size_t j = 0; j < n; ++j) {
    const bool in_span = j >= lo && j < hi;
    out[j] = in[in_span ? static_cast<std::size_t>(
                              static_cast<std::ptrdiff_t>(j) + d)
                        : j];
  }
#endif
  out[slot] = x;
  w.flip_ = !w.flip_;
}

double OrderedWindow::back() const {
  if (size_ == 0) throw std::logic_error("OrderedWindow::back: empty window");
  return fifo_[(head_ + size_ - 1) % capacity_];
}

double OrderedWindow::quantile(double q) const {
  if (size_ == 0) throw std::logic_error("OrderedWindow::quantile: empty window");
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(size_)),
                       static_cast<double>(size_)));
  return sorted()[rank == 0 ? 0 : rank - 1];
}

void OrderedWindow::clear() {
  head_ = 0;
  size_ = 0;
  flip_ = false;
}

BinnedSeries::BinnedSeries(TimePoint start, Duration bin_width, std::size_t num_bins)
    : start_(start),
      width_(bin_width),
      sums_(num_bins, 0.0),
      sample_sums_(num_bins, 0.0),
      sample_counts_(num_bins, 0) {
  if (bin_width <= 0) throw std::invalid_argument("BinnedSeries: non-positive bin width");
  if (num_bins == 0) throw std::invalid_argument("BinnedSeries: zero bins");
}

bool BinnedSeries::add(TimePoint t, double amount) {
  if (t < start_) return false;
  const auto bin = static_cast<std::size_t>((t - start_) / width_);
  if (bin >= sums_.size()) return false;
  sums_[bin] += amount;
  return true;
}

bool BinnedSeries::sample(TimePoint t, double value) {
  if (t < start_) return false;
  const auto bin = static_cast<std::size_t>((t - start_) / width_);
  if (bin >= sample_sums_.size()) return false;
  sample_sums_[bin] += value;
  sample_counts_[bin] += 1;
  return true;
}

TimePoint BinnedSeries::bin_start(std::size_t i) const {
  return start_ + static_cast<Duration>(i) * width_;
}

double BinnedSeries::rate(std::size_t i) const {
  return sums_.at(i) / to_seconds(width_);
}

double BinnedSeries::average(std::size_t i) const {
  return sample_counts_.at(i) == 0
             ? 0.0
             : sample_sums_[i] / static_cast<double>(sample_counts_[i]);
}

std::vector<double> BinnedSeries::rate_series() const {
  std::vector<double> out(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) out[i] = rate(i);
  return out;
}

std::vector<double> BinnedSeries::average_series() const {
  std::vector<double> out(sample_sums_.size());
  for (std::size_t i = 0; i < sample_sums_.size(); ++i) out[i] = average(i);
  return out;
}

}  // namespace ew
