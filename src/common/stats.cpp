#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ew {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  return mean_ == 0.0 ? 0.0 : stddev() / std::abs(mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindow: zero capacity");
}

void SlidingWindow::add(double x) {
  if (buf_.size() == capacity_) buf_.pop_front();
  buf_.push_back(x);
}

double SlidingWindow::mean() const {
  if (buf_.empty()) return 0.0;
  double s = 0.0;
  for (double v : buf_) s += v;
  return s / static_cast<double>(buf_.size());
}

double SlidingWindow::median() const { return quantile(0.5); }

double SlidingWindow::quantile(double q) const {
  if (buf_.empty()) throw std::logic_error("SlidingWindow::quantile: empty window");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(buf_.begin(), buf_.end());
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(v.size())),
                       static_cast<double>(v.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

BinnedSeries::BinnedSeries(TimePoint start, Duration bin_width, std::size_t num_bins)
    : start_(start),
      width_(bin_width),
      sums_(num_bins, 0.0),
      sample_sums_(num_bins, 0.0),
      sample_counts_(num_bins, 0) {
  if (bin_width <= 0) throw std::invalid_argument("BinnedSeries: non-positive bin width");
  if (num_bins == 0) throw std::invalid_argument("BinnedSeries: zero bins");
}

void BinnedSeries::add(TimePoint t, double amount) {
  if (t < start_) return;
  const auto bin = static_cast<std::size_t>((t - start_) / width_);
  if (bin >= sums_.size()) return;
  sums_[bin] += amount;
}

void BinnedSeries::sample(TimePoint t, double value) {
  if (t < start_) return;
  const auto bin = static_cast<std::size_t>((t - start_) / width_);
  if (bin >= sample_sums_.size()) return;
  sample_sums_[bin] += value;
  sample_counts_[bin] += 1;
}

TimePoint BinnedSeries::bin_start(std::size_t i) const {
  return start_ + static_cast<Duration>(i) * width_;
}

double BinnedSeries::rate(std::size_t i) const {
  return sums_.at(i) / to_seconds(width_);
}

double BinnedSeries::average(std::size_t i) const {
  return sample_counts_.at(i) == 0
             ? 0.0
             : sample_sums_[i] / static_cast<double>(sample_counts_[i]);
}

std::vector<double> BinnedSeries::rate_series() const {
  std::vector<double> out(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) out[i] = rate(i);
  return out;
}

std::vector<double> BinnedSeries::average_series() const {
  std::vector<double> out(sample_sums_.size());
  for (std::size_t i = 0; i < sample_sums_.size(); ++i) out[i] = average(i);
  return out;
}

void ErrorTracker::add(double predicted, double actual) {
  ++n_;
  const double e = predicted - actual;
  abs_sum_ += std::abs(e);
  sq_sum_ += e * e;
}

}  // namespace ew
