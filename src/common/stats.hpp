// Streaming statistics used by the forecasters, the dynamic-benchmarking
// layer and the benchmark harnesses (5-minute-average series of Figs. 2-4).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "common/clock.hpp"

namespace ew {

/// Welford running mean/variance over a stream of doubles.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sliding window with an O(1) running mean and O(n) quantile
/// queries. Small windows only (forecasting uses <= a few hundred samples).
/// Values must be finite (the forecasting streams are NaN-free by contract).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);
  void add(double x);
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }
  [[nodiscard]] double back() const { return buf_.back(); }
  /// Running-sum mean: O(1). Subject to normal floating-point accumulation
  /// drift over very long streams (bounded by window churn, not stream
  /// length, because evicted values are subtracted back out).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
  /// q in [0,1]; nearest-rank quantile. Requires non-empty window.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::deque<double>& values() const { return buf_; }
  void clear() {
    buf_.clear();
    sum_ = 0.0;
  }

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

class OrderedWindow;
namespace detail {
/// Backdoor for the ISA-specific OrderedWindow kernels (stats_simd.cpp is
/// compiled with wider vector flags than the rest of the library and
/// dispatched at startup by CPU capability).
struct OrderedWindowKernels {
  static void steady_add_generic(OrderedWindow& w, double x);
#if defined(EW_ORDERED_WINDOW_AVX2)
  static void steady_add_avx2(OrderedWindow& w, double x);
#endif
};
}  // namespace detail

/// Fixed-capacity sliding window that keeps its contents **sorted
/// incrementally**, the workhorse behind the incremental forecaster battery
/// (SlidingMedian, TrimmedMean, AdaptiveTimeout tails). Rank queries —
/// median, quantiles, trimmed ranges — are O(1) array indexing instead of
/// the copy-and-sort (O(w log w) plus an allocation) the naive SlidingWindow
/// needs.
///
/// Maintenance strategy, chosen by measurement (see DESIGN.md, "Forecasting
/// hot path"):
///  - w <= kScanThreshold (every battery window): each add() rebuilds the
///    sorted array into a second buffer with a branchless vectorized pass —
///    one sweep counts the evicted element's and the newcomer's ranks, a
///    second sweep blends each element with its shifted-by-one neighbour by
///    rank mask and the buffers swap roles. O(w) with tiny constants; the
///    point is that the trip counts are fixed, so a random measurement
///    stream causes **zero** branch mispredictions and the pipeline can
///    overlap adjacent forecasters' updates. Both the O(log w) dual-multiset
///    (allocator traffic) and binary-search + memmove (one unpredictable
///    direction branch + one unpredictable trip count per add = two pipeline
///    flushes) variants were prototyped and lost ~1.5-4x.
///  - w > kScanThreshold: two O(log w) binary searches plus one contiguous
///    memmove between the two positions, in place.
///
/// Values must be finite; NaNs would corrupt the sorted invariant (asserted
/// in debug builds).
class OrderedWindow {
 public:
  explicit OrderedWindow(std::size_t capacity);

  /// Insert x, evicting the oldest value first when the window is full.
  void add(double x);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Most recently added value (arrival order, not sorted order).
  [[nodiscard]] double back() const;

  /// i-th smallest value (rank order). Requires i < size().
  [[nodiscard]] double at_rank(std::size_t i) const { return sorted()[i]; }
  /// The toolkit's median definition: nearest-rank, i.e. the order statistic
  /// at rank ceil(n/2) (the lower of the two middle elements for even n).
  /// Identical to SlidingWindow::quantile(0.5), so forecasts are
  /// bit-identical with the naive battery at every window size.
  /// Inline: this is the per-observation read on the forecaster hot path.
  [[nodiscard]] double median() const {
    if (size_ == 0) throw std::logic_error("OrderedWindow::median: empty window");
    return sorted()[(size_ - 1) / 2];
  }
  /// q in [0,1]; nearest-rank quantile (same rank rule as SlidingWindow),
  /// answered in O(1) from the sorted array. Requires non-empty window.
  [[nodiscard]] double quantile(double q) const;
  /// Sum of the order statistics in rank range [lo, hi); O(hi - lo).
  /// Summed left to right so the result is bit-identical to a naive loop
  /// over a sorted copy of the window.
  [[nodiscard]] double range_sum(std::size_t lo, std::size_t hi) const {
    hi = hi < size_ ? hi : size_;
    const double* v = sorted();
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += v[i];
    return s;
  }

  void clear();

 private:
  friend struct detail::OrderedWindowKernels;

  /// Windows at or below this use the branchless rebuild; above it, binary
  /// search + memmove (the sweeps' fixed-trip advantage fades once the
  /// window outgrows a few cache lines).
  static constexpr std::size_t kScanThreshold = 64;
  /// Margins around the sorted payload in each buffer: the rebuild sweep
  /// reads the shifted-by-one neighbour (index -1 at the front) and reads &
  /// writes whole vector chunks (up to 3 slots past the end with 4-lane
  /// AVX2). Margin contents are never real data.
  static constexpr std::size_t kFront = 1;
  static constexpr std::size_t kBack = 4;

  /// Sorted payload of the active buffer. A flip flag rather than cached
  /// pointers keeps the implicit copy/move of the class correct.
  [[nodiscard]] const double* sorted() const {
    return (flip_ ? bufb_ : bufa_).data() + kFront;
  }
  [[nodiscard]] double* sorted_mut() {
    return (flip_ ? bufb_ : bufa_).data() + kFront;
  }
  [[nodiscard]] double* spare_mut() {
    return (flip_ ? bufa_ : bufb_).data() + kFront;
  }

  void add_warmup(double x);
  void add_large(double x);  // w > kScanThreshold: binary search + memmove

  std::size_t capacity_;
  std::size_t head_ = 0;  // ring index of the oldest element in fifo_
  std::size_t size_ = 0;
  bool flip_ = false;           // which of bufa_/bufb_ holds the sorted data
  std::vector<double> fifo_;    // arrival order (ring buffer)
  std::vector<double> bufa_;    // sorted values + margins (active or spare)
  std::vector<double> bufb_;
};

/// Accumulates (time, value) observations into fixed-width time bins and
/// reports per-bin averages — exactly the "5 Minute Averages" of the paper's
/// result figures. Values are rates contributed over the bin; `add` deposits
/// an amount of work at a time, and `rate_series` divides by bin width.
class BinnedSeries {
 public:
  BinnedSeries(TimePoint start, Duration bin_width, std::size_t num_bins);

  /// Deposit `amount` (e.g. integer ops completed) at time t. Returns false
  /// (and deposits nothing) when t falls outside the recorded range, so
  /// callers can count what they lose instead of losing it silently.
  bool add(TimePoint t, double amount);

  /// Record an instantaneous gauge sample (e.g. host count) at time t;
  /// per-bin value is the average of samples in the bin. Returns false when
  /// t falls outside the recorded range (sample dropped).
  bool sample(TimePoint t, double value);

  [[nodiscard]] std::size_t num_bins() const { return sums_.size(); }
  [[nodiscard]] TimePoint bin_start(std::size_t i) const;
  /// Sum deposited into bin i divided by bin width in seconds.
  [[nodiscard]] double rate(std::size_t i) const;
  /// Average of gauge samples in bin i (0 if none).
  [[nodiscard]] double average(std::size_t i) const;
  /// Full rate series.
  [[nodiscard]] std::vector<double> rate_series() const;
  /// Full gauge-average series.
  [[nodiscard]] std::vector<double> average_series() const;

 private:
  TimePoint start_;
  Duration width_;
  std::vector<double> sums_;
  std::vector<double> sample_sums_;
  std::vector<std::uint64_t> sample_counts_;
};

/// Mean absolute error accumulator for forecaster scoring.
class ErrorTracker {
 public:
  /// Inline: the adaptive selector scores every battery member against each
  /// new observation, so this runs |battery| times per measurement.
  void add(double predicted, double actual) {
    ++n_;
    const double e = predicted - actual;
    abs_sum_ += std::abs(e);
    sq_sum_ += e * e;
  }
  [[nodiscard]] double mae() const { return n_ ? abs_sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double mse() const { return n_ ? sq_sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  std::size_t n_ = 0;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
};

}  // namespace ew
