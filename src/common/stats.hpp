// Streaming statistics used by the forecasters, the dynamic-benchmarking
// layer and the benchmark harnesses (5-minute-average series of Figs. 2-4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/clock.hpp"

namespace ew {

/// Welford running mean/variance over a stream of doubles.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sliding window with O(n) quantile queries.
/// Small windows only (forecasting uses <= a few hundred samples).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);
  void add(double x);
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }
  [[nodiscard]] double back() const { return buf_.back(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
  /// q in [0,1]; nearest-rank quantile. Requires non-empty window.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::deque<double>& values() const { return buf_; }
  void clear() { buf_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
};

/// Accumulates (time, value) observations into fixed-width time bins and
/// reports per-bin averages — exactly the "5 Minute Averages" of the paper's
/// result figures. Values are rates contributed over the bin; `add` deposits
/// an amount of work at a time, and `rate_series` divides by bin width.
class BinnedSeries {
 public:
  BinnedSeries(TimePoint start, Duration bin_width, std::size_t num_bins);

  /// Deposit `amount` (e.g. integer ops completed) at time t. Out-of-range
  /// times are ignored.
  void add(TimePoint t, double amount);

  /// Record an instantaneous gauge sample (e.g. host count) at time t;
  /// per-bin value is the average of samples in the bin.
  void sample(TimePoint t, double value);

  [[nodiscard]] std::size_t num_bins() const { return sums_.size(); }
  [[nodiscard]] TimePoint bin_start(std::size_t i) const;
  /// Sum deposited into bin i divided by bin width in seconds.
  [[nodiscard]] double rate(std::size_t i) const;
  /// Average of gauge samples in bin i (0 if none).
  [[nodiscard]] double average(std::size_t i) const;
  /// Full rate series.
  [[nodiscard]] std::vector<double> rate_series() const;
  /// Full gauge-average series.
  [[nodiscard]] std::vector<double> average_series() const;

 private:
  TimePoint start_;
  Duration width_;
  std::vector<double> sums_;
  std::vector<double> sample_sums_;
  std::vector<std::uint64_t> sample_counts_;
};

/// Mean absolute error accumulator for forecaster scoring.
class ErrorTracker {
 public:
  void add(double predicted, double actual);
  [[nodiscard]] double mae() const { return n_ ? abs_sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double mse() const { return n_ ? sq_sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  std::size_t n_ = 0;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
};

}  // namespace ew
