#include "common/serialize.hpp"

namespace ew {

template <typename T>
Result<T> Reader::read_le() {
  if (remaining() < sizeof(T)) {
    return Error{Err::kProtocol, "truncated: need " + std::to_string(sizeof(T)) +
                                     " bytes, have " + std::to_string(remaining())};
  }
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
  }
  pos_ += sizeof(T);
  return v;
}

Result<std::uint8_t> Reader::u8() { return read_le<std::uint8_t>(); }
Result<std::uint16_t> Reader::u16() { return read_le<std::uint16_t>(); }
Result<std::uint32_t> Reader::u32() { return read_le<std::uint32_t>(); }
Result<std::uint64_t> Reader::u64() { return read_le<std::uint64_t>(); }

Result<std::int32_t> Reader::i32() {
  auto r = read_le<std::uint32_t>();
  if (!r) return r.error();
  return static_cast<std::int32_t>(*r);
}

Result<std::int64_t> Reader::i64() {
  auto r = read_le<std::uint64_t>();
  if (!r) return r.error();
  return static_cast<std::int64_t>(*r);
}

Result<double> Reader::f64() {
  auto r = read_le<std::uint64_t>();
  if (!r) return r.error();
  return std::bit_cast<double>(*r);
}

Result<bool> Reader::boolean() {
  auto r = read_le<std::uint8_t>();
  if (!r) return r.error();
  if (*r > 1) return Error{Err::kProtocol, "bad boolean encoding"};
  return *r == 1;
}

Result<std::string> Reader::str() {
  auto len = u32();
  if (!len) return len.error();
  if (remaining() < *len) {
    return Error{Err::kProtocol, "string length " + std::to_string(*len) +
                                     " exceeds remaining " + std::to_string(remaining())};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

Result<Bytes> Reader::blob() {
  auto len = u32();
  if (!len) return len.error();
  return raw(*len);
}

Result<Bytes> Reader::raw(std::size_t n) {
  if (remaining() < n) {
    return Error{Err::kProtocol, "blob length " + std::to_string(n) +
                                     " exceeds remaining " + std::to_string(remaining())};
  }
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace ew
