// Stable (process-independent) hashing.
//
// Gossips partition synchronization responsibility among themselves by
// rendezvous hashing (Section 2.3: responsibility is "dynamically
// partitioned ... amongst themselves"). Every gossip must compute identical
// hashes, so std::hash (implementation-defined) is out; FNV-1a is fixed.
#pragma once

#include <cstdint>
#include <string_view>

namespace ew {

/// 64-bit FNV-1a.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Rendezvous weight of `owner` for `item`: the owner with the highest
/// weight is responsible for the item.
constexpr std::uint64_t rendezvous_weight(std::string_view owner,
                                          std::string_view item) {
  std::uint64_t h = fnv1a64(owner);
  // Mix the two hashes (splitmix64 finalizer).
  std::uint64_t z = h ^ fnv1a64(item);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace ew
