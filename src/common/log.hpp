// Minimal leveled logger.
//
// The SC98 application shipped performance records to a dedicated logging
// service (Section 3.1.3); that lives in src/core/logging_service.hpp. This
// file is only the local diagnostic logger used by the toolkit itself.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace ew {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logging configuration. Thread-safe.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Minimum level that will be emitted (default: kWarn, keeps tests quiet).
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replace the output sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ew

#define EW_LOG(lvl_)                                                    \
  if (static_cast<int>(lvl_) < static_cast<int>(::ew::Log::level())) { \
  } else                                                                \
    ::ew::detail::LogLine(lvl_)

#define EW_DEBUG EW_LOG(::ew::LogLevel::kDebug)
#define EW_INFO EW_LOG(::ew::LogLevel::kInfo)
#define EW_WARN EW_LOG(::ew::LogLevel::kWarn)
#define EW_ERROR EW_LOG(::ew::LogLevel::kError)
