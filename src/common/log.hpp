// Minimal leveled logger.
//
// The SC98 application shipped performance records to a dedicated logging
// service (Section 3.1.3); that lives in src/core/logging_service.hpp. This
// file is only the local diagnostic logger used by the toolkit itself.
//
// Sinks receive a structured Record (level, component, message, event_tag)
// rather than a pre-formatted line, so collectors can route or index on the
// fields; the default sink renders to stderr exactly as it always has.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace ew {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logging configuration. Thread-safe.
class Log {
 public:
  /// One structured log event. `component` names the emitting subsystem
  /// ("" for untagged toolkit logs); `event_tag` optionally carries the
  /// dynamic-benchmarking tag so log lines join against forecast streams
  /// and obs trace spans.
  struct Record {
    LogLevel level = LogLevel::kInfo;
    std::string component;
    std::string message;
    std::string event_tag;
  };

  using Sink = std::function<void(const Record&)>;

  /// Minimum level that will be emitted (default: kWarn, keeps tests quiet).
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replace the output sink (default writes to stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(Record rec);
  /// Untagged convenience: component and event_tag empty. Renders through
  /// the default sink byte-identically to the pre-Record logger.
  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(LogLevel level, std::string component, std::string event_tag = {})
      : level_(level),
        component_(std::move(component)),
        event_tag_(std::move(event_tag)) {}
  ~LogLine() {
    Log::write(Log::Record{level_, std::move(component_), os_.str(),
                           std::move(event_tag_)});
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::string event_tag_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ew

#define EW_LOG(lvl_)                                                    \
  if (static_cast<int>(lvl_) < static_cast<int>(::ew::Log::level())) { \
  } else                                                                \
    ::ew::detail::LogLine(lvl_)

// Component-tagged variant: EW_LOG_C(level, "gossip") << "...";
#define EW_LOG_C(lvl_, component_)                                      \
  if (static_cast<int>(lvl_) < static_cast<int>(::ew::Log::level())) { \
  } else                                                                \
    ::ew::detail::LogLine(lvl_, component_)

#define EW_DEBUG EW_LOG(::ew::LogLevel::kDebug)
#define EW_INFO EW_LOG(::ew::LogLevel::kInfo)
#define EW_WARN EW_LOG(::ew::LogLevel::kWarn)
#define EW_ERROR EW_LOG(::ew::LogLevel::kError)
