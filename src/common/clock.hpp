// Clock abstractions for EveryWare.
//
// All toolkit components (RPC timeouts, forecasters, gossip polling,
// schedulers) are written against the abstract Clock so the same protocol
// code runs in real time over TCP sockets and in virtual time inside the
// discrete-event Grid simulator (see src/sim/event_queue.hpp).
//
// Time is represented as microseconds in a signed 64-bit integer
// (Duration/TimePoint). The paper's toolkit only assumed one-second clock
// resolution (Section 5.1); we keep microseconds internally so the simulator
// can order events precisely, and expose seconds-based helpers.
#pragma once

#include <cstdint>

namespace ew {

/// Microsecond-resolution duration.
using Duration = std::int64_t;
/// Microseconds since an arbitrary epoch (simulation start or process start).
using TimePoint = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;

/// Convert a duration to floating-point seconds.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Convert floating-point seconds to a Duration (truncating).
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since this clock's epoch.
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Wall-clock time source backed by std::chrono::steady_clock.
/// The epoch is the construction time of the clock.
class RealClock final : public Clock {
 public:
  RealClock();
  [[nodiscard]] TimePoint now() const override;

 private:
  std::int64_t epoch_ns_;
};

/// Manually-advanced time source used by the simulator and by unit tests.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(TimePoint start = 0) : now_(start) {}
  [[nodiscard]] TimePoint now() const override { return now_; }
  /// Move time forward by `d` (must be non-negative).
  void advance(Duration d);
  /// Jump to an absolute time (must not move backwards).
  void set(TimePoint t);

 private:
  TimePoint now_;
};

}  // namespace ew
