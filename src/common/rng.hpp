// Deterministic pseudo-random number generation.
//
// The simulator must be exactly reproducible from a seed, so we avoid
// std::mt19937's implementation-defined distribution behaviour and implement
// xoshiro256** (seeded through splitmix64) together with the distribution
// helpers we need. All distribution code is ours, so a given seed produces
// identical traces on every platform.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace ew {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with portable distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (inter-arrival times).
  double exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Normally distributed value (Box-Muller; one value per call for determinism).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
  }

  /// Log-normal value parameterised by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Fork a statistically independent child generator (for per-host streams).
  Rng split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ew
