// A miniature Network Weather Service (paper Figure 1, Sections 2.2, 3.1).
//
// "To anticipate load changes, the various application components consult
// the Network Weather Service (NWS) — a distributed dynamic performance
// forecasting service for Computational Grids."
//
// The toolkit already embeds the NWS *forecasting* subsystem as a library
// (selector.hpp — exactly what the paper did for EveryWare). This module is
// the NWS *service*: monitoring stations that actively measure resources and
// answer forecast queries over the lingua franca.
//
//   * NwsStationModule — a ServiceFramework control module. Each station
//     periodically probes its peer stations (kNwsProbe round-trips measure
//     network responsiveness between sites) and accepts pushed measurements
//     from local sensors (kNwsReport, e.g. host CPU availability). Every
//     measurement stream gets the full adaptive forecaster battery.
//   * Clients query any station (kNwsQuery with a resource name) and get
//     {forecast value, expected error, samples} back.
#pragma once

#include <map>

#include "core/service_framework.hpp"
#include "forecast/selector.hpp"

namespace ew::nws {

namespace msgtype {
constexpr MsgType kNwsProbe = 0x0270;   // station <-> station latency probe
constexpr MsgType kNwsReport = 0x0271;  // sensor -> station measurement push
constexpr MsgType kNwsQuery = 0x0272;   // client -> station forecast query
}  // namespace msgtype

/// Wire form of a measurement push: resource name + value.
struct NwsMeasurement {
  std::string resource;
  double value = 0.0;

  [[nodiscard]] Bytes serialize() const;
  static Result<NwsMeasurement> deserialize(const Bytes& data);
};

/// Wire form of a query response.
struct NwsForecastReply {
  double value = 0.0;
  double error = 0.0;
  std::uint64_t samples = 0;
  std::string method;

  [[nodiscard]] Bytes serialize() const;
  static Result<NwsForecastReply> deserialize(const Bytes& data);
};

class NwsStationModule final : public core::ServiceModule {
 public:
  struct Options {
    std::vector<Endpoint> peers;             // other stations to probe
    Duration probe_period = 30 * kSecond;    // per-peer probe cadence
    std::size_t max_resources = 10'000;      // bounded memory
  };

  explicit NwsStationModule(Options opts) : opts_(std::move(opts)) {}

  [[nodiscard]] const char* name() const override { return "nws-station"; }
  void attach(core::ServiceContext& ctx) override;

  /// Local measurement injection (same path as kNwsReport).
  void record(const std::string& resource, double value);

  /// Resource names: "latency:<peer endpoint>" for probe streams; sensor
  /// pushes use whatever name the sensor chose (e.g. "cpu:host-3").
  [[nodiscard]] Forecast forecast(const std::string& resource) const;
  [[nodiscard]] std::size_t tracked_resources() const { return series_.size(); }
  [[nodiscard]] std::uint64_t probes_completed() const { return probes_; }

 private:
  void probe_peer(const Endpoint& peer);

  Options opts_;
  core::ServiceContext* ctx_ = nullptr;
  std::map<std::string, AdaptiveForecaster> series_;
  std::uint64_t probes_ = 0;
};

/// A CPU sensor for simulated hosts: periodically pushes the host's current
/// availability fraction to a station. (On a real deployment this would read
/// /proc; the sensor interface is the point.)
class NwsCpuSensor final : public core::ServiceModule {
 public:
  struct Options {
    Endpoint station;
    std::string resource;                    // e.g. "cpu:condor-17"
    std::function<double()> read;            // current measurement
    Duration period = 30 * kSecond;
  };

  explicit NwsCpuSensor(Options opts) : opts_(std::move(opts)) {}
  [[nodiscard]] const char* name() const override { return "nws-cpu-sensor"; }
  void attach(core::ServiceContext& ctx) override;

 private:
  Options opts_;
};

}  // namespace ew::nws
