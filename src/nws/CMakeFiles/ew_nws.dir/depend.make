# Empty dependencies file for ew_nws.
# This may be replaced when dependencies are built.
