file(REMOVE_RECURSE
  "CMakeFiles/ew_nws.dir/nws.cpp.o"
  "CMakeFiles/ew_nws.dir/nws.cpp.o.d"
  "libew_nws.a"
  "libew_nws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_nws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
