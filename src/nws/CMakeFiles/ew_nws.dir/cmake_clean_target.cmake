file(REMOVE_RECURSE
  "libew_nws.a"
)
