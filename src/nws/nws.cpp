#include "nws/nws.hpp"

#include "common/log.hpp"

namespace ew::nws {

Bytes NwsMeasurement::serialize() const {
  Writer w;
  w.str(resource);
  w.f64(value);
  return w.take();
}

Result<NwsMeasurement> NwsMeasurement::deserialize(const Bytes& data) {
  Reader r(data);
  NwsMeasurement m;
  auto name = r.str();
  if (!name) return name.error();
  m.resource = std::move(*name);
  auto v = r.f64();
  if (!v) return v.error();
  m.value = *v;
  return m;
}

Bytes NwsForecastReply::serialize() const {
  Writer w;
  w.f64(value);
  w.f64(error);
  w.u64(samples);
  w.str(method);
  return w.take();
}

Result<NwsForecastReply> NwsForecastReply::deserialize(const Bytes& data) {
  Reader r(data);
  NwsForecastReply out;
  auto v = r.f64();
  if (!v) return v.error();
  out.value = *v;
  auto e = r.f64();
  if (!e) return e.error();
  out.error = *e;
  auto s = r.u64();
  if (!s) return s.error();
  out.samples = *s;
  auto m = r.str();
  if (!m) return m.error();
  out.method = std::move(*m);
  return out;
}

void NwsStationModule::record(const std::string& resource, double value) {
  auto it = series_.find(resource);
  if (it == series_.end()) {
    if (series_.size() >= opts_.max_resources) {
      EW_WARN << "NWS station: resource cap reached, dropping " << resource;
      return;
    }
    it = series_.emplace(resource, AdaptiveForecaster::nws_default()).first;
  }
  it->second.observe(value);
}

Forecast NwsStationModule::forecast(const std::string& resource) const {
  auto it = series_.find(resource);
  if (it == series_.end()) return Forecast{};
  return it->second.forecast();
}

void NwsStationModule::probe_peer(const Endpoint& peer) {
  const TimePoint t0 = ctx_->now();
  ctx_->call(peer, msgtype::kNwsProbe, {}, [this, peer, t0](Result<Bytes> r) {
    if (!r.ok()) return;  // unreachable peers simply yield no sample
    ++probes_;
    record("latency:" + peer.to_string(),
           static_cast<double>(ctx_->now() - t0));
  });
}

void NwsStationModule::attach(core::ServiceContext& ctx) {
  ctx_ = &ctx;
  ctx.handle(msgtype::kNwsProbe,
             [](const IncomingMessage&, Responder r) { r.ok(); });
  ctx.handle(msgtype::kNwsReport, [this](const IncomingMessage& m, Responder r) {
    auto meas = NwsMeasurement::deserialize(m.packet.payload);
    if (!meas) {
      r.fail(Err::kProtocol, meas.error().message);
      return;
    }
    record(meas->resource, meas->value);
    r.ok();
  });
  ctx.handle(msgtype::kNwsQuery, [this](const IncomingMessage& m, Responder r) {
    Reader rd(m.packet.payload);
    auto resource = rd.str();
    if (!resource) {
      r.fail(Err::kProtocol, "missing resource name");
      return;
    }
    const Forecast f = forecast(*resource);
    if (f.samples == 0) {
      r.fail(Err::kRejected, "no measurements for " + *resource);
      return;
    }
    NwsForecastReply reply;
    reply.value = f.value;
    reply.error = f.error;
    reply.samples = f.samples;
    reply.method = std::string(f.method);
    r.ok(reply.serialize());
  });
  ctx.every(opts_.probe_period, [this] {
    for (const auto& peer : opts_.peers) {
      if (peer != ctx_->self()) probe_peer(peer);
    }
  });
}

void NwsCpuSensor::attach(core::ServiceContext& ctx) {
  auto* opts = &opts_;
  ctx.every(opts_.period, [&ctx, opts] {
    if (!opts->read) return;
    NwsMeasurement m;
    m.resource = opts->resource;
    m.value = opts->read();
    ctx.call(opts->station, msgtype::kNwsReport, m.serialize(),
             [](Result<Bytes>) {});
  });
}

}  // namespace ew::nws
