// Node: the request/response endpoint every EveryWare component is built on.
//
// A Node owns one bound transport endpoint and multiplexes it between
//   * registered server handlers (one per message type), and
//   * outstanding client calls (matched to responses by sequence number).
//
// Client calls carry an explicit per-call time-out. The paper found that
// statically chosen time-outs "frequently misjudged the availability" of
// servers under SC98's fluctuating load (Section 2.2); Node therefore
// reports every request's round-trip time (or failure) to an observer, which
// the forecasting layer uses for dynamic time-out discovery
// (forecast/timeout.hpp).
//
// Response payloads are wrapped in a 1-byte status so servers can signal
// application-level rejection (e.g. the persistent-state sanity check of
// Section 3.1.2) distinctly from transport failure.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "net/executor.hpp"
#include "net/transport.hpp"

namespace ew {

/// Reply hook handed to server handlers. A handler must call exactly one of
/// ok()/fail() (calling neither times the client out; calling both is
/// ignored after the first). Copyable so handlers can defer replies.
class Responder {
 public:
  using SendFn = std::function<void(std::uint8_t code, const Bytes& payload)>;
  Responder() = default;
  explicit Responder(SendFn send) : send_(std::move(send)) {}

  void ok(const Bytes& payload = {}) const { emit(0, payload); }
  void fail(Err code, const std::string& message = {}) const;

 private:
  void emit(std::uint8_t code, const Bytes& payload) const;
  SendFn send_;
};

class Node {
 public:
  using ServerHandler = std::function<void(const IncomingMessage&, Responder)>;
  using CallCallback = std::function<void(Result<Bytes>)>;
  /// (server, message type, round-trip time, succeeded) for every call.
  using RttObserver =
      std::function<void(const Endpoint&, MsgType, Duration, bool)>;

  Node(Executor& exec, Transport& transport, Endpoint self);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Bind the endpoint and begin dispatching. Must be called before use.
  Status start();
  /// Unbind. Outstanding call callbacks are abandoned (never invoked): stop
  /// happens during teardown, when callback owners may already be gone.
  void stop();

  /// Register the handler for requests/one-ways of the given type.
  void handle(MsgType type, ServerHandler handler);

  /// Issue a request; `cb` fires exactly once on the executor with the
  /// response payload, a server-signalled error, or kTimeout.
  void call(const Endpoint& to, MsgType type, Bytes payload, Duration timeout,
            CallCallback cb);

  /// Fire-and-forget message.
  Status send_oneway(const Endpoint& to, MsgType type, Bytes payload);

  void set_rtt_observer(RttObserver obs) { observer_ = std::move(obs); }

  [[nodiscard]] const Endpoint& self() const { return self_; }
  [[nodiscard]] Executor& executor() { return exec_; }
  [[nodiscard]] std::size_t outstanding_calls() const { return pending_.size(); }

  /// Process-wide RPC stability counters (Section 2.2's evaluation of
  /// time-out quality). A "spurious timeout" is a call that timed out whose
  /// response later arrived — the exact misjudgment the paper blames static
  /// time-outs for. Aggregated across every Node so scenario-scale benches
  /// can read them; reset between experiment arms.
  struct GlobalStats {
    std::uint64_t timeouts_fired = 0;    // calls that ended by timeout
    std::uint64_t late_responses = 0;    // responses arriving after timeout
    std::uint64_t timeout_wait_us = 0;   // total time spent waiting in them
  };
  static const GlobalStats& global_stats();
  static void reset_global_stats();

 private:
  struct Pending {
    CallCallback cb;
    TimerId timer = kInvalidTimer;
    TimePoint sent = 0;
    MsgType type = 0;
    Endpoint to;
    Duration timeout = 0;
  };

  void on_packet(IncomingMessage msg);
  void on_response(const IncomingMessage& msg);
  void finish(std::uint64_t seq, Result<Bytes> result, bool success);

  Executor& exec_;
  Transport& transport_;
  Endpoint self_;
  bool started_ = false;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<MsgType, ServerHandler> handlers_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  RttObserver observer_;
};

}  // namespace ew
