// Node: the request/response endpoint every EveryWare component is built on.
//
// A Node owns one bound transport endpoint and multiplexes it between
//   * registered server handlers (one per message type), and
//   * outstanding client calls (matched to responses by sequence number).
//
// A call is a policy-governed unit of work that may span several network
// attempts: retries with backoff, a forecast-triggered hedge duplicate, all
// bounded by an optional overall deadline (net/call_policy.hpp). Attempt
// time-outs come from dynamic time-out discovery — the paper found that
// statically chosen time-outs "frequently misjudged the availability" of
// servers under SC98's fluctuating load (Section 2.2) — and every attempt's
// round trip (or failure) feeds the per-(server, message type) forecaster
// so the next time-out reflects ambient conditions.
//
// Whatever the attempt history, the callback fires exactly once: responses
// from cancelled or superseded attempts are counted and dropped, and a late
// response that beats a pending retry completes the call instead of being
// wasted.
//
// Response payloads are wrapped in a 1-byte status so servers can signal
// application-level rejection (e.g. the persistent-state sanity check of
// Section 3.1.2) distinctly from transport failure; the status byte maps
// onto common/result.hpp Err values end-to-end, which is what lets the
// retry policy distinguish retryable transport failures from non-retryable
// application verdicts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "net/call_policy.hpp"
#include "net/executor.hpp"
#include "net/transport.hpp"

namespace ew {

/// Reply hook handed to server handlers. A handler must call exactly one of
/// ok()/fail() (calling neither times the client out; calling both is
/// ignored after the first). Copyable so handlers can defer replies.
class Responder {
 public:
  using SendFn = std::function<void(std::uint8_t code, const Bytes& payload)>;
  Responder() = default;
  explicit Responder(SendFn send) : send_(std::move(send)) {}

  void ok(const Bytes& payload = {}) const { emit(0, payload); }
  void fail(Err code, const std::string& message = {}) const;

 private:
  void emit(std::uint8_t code, const Bytes& payload) const;
  SendFn send_;
};

class Node {
 public:
  using ServerHandler = std::function<void(const IncomingMessage&, Responder)>;
  using CallCallback = std::function<void(Result<Bytes>)>;
  /// (server, message type, round-trip time, succeeded) for every attempt.
  using RttObserver =
      std::function<void(const Endpoint&, MsgType, Duration, bool)>;

  Node(Executor& exec, Transport& transport, Endpoint self);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Bind the endpoint and begin dispatching. Must be called before use.
  Status start();
  /// Unbind. Outstanding call callbacks are abandoned (never invoked): stop
  /// happens during teardown, when callback owners may already be gone.
  void stop();

  /// Crash-stop: detach from the transport, then fail every outstanding
  /// call with Err::kPeerDown. Unlike stop(), callbacks DO fire — a chaos
  /// kill runs while the owning components are still alive (though already
  /// stopped, so their liveness guards make the callbacks no-ops), and the
  /// paper's recovery paths key off seeing the failure rather than hanging.
  void crash();

  /// Complete every outstanding call with `code` right now, in call-id
  /// order. Timers are cancelled; later responses count as late/duplicate.
  void fail_outstanding(Err code);

  /// Register the handler for requests/one-ways of the given type.
  void handle(MsgType type, ServerHandler handler);

  /// Issue a request under `opts`; `cb` fires exactly once with the
  /// response payload, a server-signalled error, or the last transport
  /// failure once retries/deadline are exhausted. CallOptions{} gives one
  /// attempt with a forecast-driven time-out; CallOptions::fixed(d) is the
  /// old positional-Duration behaviour.
  void call(const Endpoint& to, MsgType type, Bytes payload, CallOptions opts,
            CallCallback cb);

  /// Fire-and-forget message.
  Status send_oneway(const Endpoint& to, MsgType type, Bytes payload);

  void set_rtt_observer(RttObserver obs) { observer_ = std::move(obs); }

  /// Retry/hedge/breaker policy plus the node's adaptive time-outs and
  /// stats sink. Mutable so components can enable breakers, pre-seed
  /// forecasts, or inject a CallStatsSink.
  [[nodiscard]] CallPolicy& call_policy() { return policy_; }
  [[nodiscard]] const CallPolicy& call_policy() const { return policy_; }

  [[nodiscard]] const Endpoint& self() const { return self_; }
  [[nodiscard]] Executor& executor() { return exec_; }
  [[nodiscard]] std::size_t outstanding_calls() const { return calls_.size(); }

 private:
  /// One logical call: callback, policy, and the attempt bookkeeping that
  /// guarantees single delivery across retries and hedges.
  struct CallState {
    CallCallback cb;
    Endpoint to;
    MsgType type = 0;
    EventTag tag;
    CallOptions opts;
    Bytes payload;               // kept only when a resend is possible
    TimePoint started = 0;
    TimePoint deadline_at = 0;   // 0 = no deadline
    TimerId deadline_timer = kInvalidTimer;
    TimerId retry_timer = kInvalidTimer;
    TimerId hedge_timer = kInvalidTimer;
    Duration first_attempt_timeout = 0;
    std::uint32_t attempts_started = 0;  // retries; hedges not counted
    std::uint32_t in_flight = 0;
    bool hedge_sent = false;
    std::vector<std::uint64_t> seqs;     // every seq this call ever used
  };

  /// One wire attempt, matched to its response by seq.
  struct Attempt {
    std::uint64_t call_id = 0;
    TimerId timer = kInvalidTimer;
    TimePoint sent = 0;
    Duration timeout = 0;
    bool is_hedge = false;
  };

  struct LateAttempt {
    std::uint64_t call_id = 0;
    TimePoint sent = 0;
  };

  void on_packet(IncomingMessage msg);
  void on_response(const IncomingMessage& msg);
  void start_attempt(std::uint64_t call_id, Bytes payload, bool is_hedge);
  void maybe_schedule_hedge(std::uint64_t call_id);
  void on_attempt_timeout(std::uint64_t seq);
  /// An attempt ended in a transport failure; retry or complete the call.
  void on_attempt_failed(std::uint64_t call_id, Error err);
  /// Schedule the next retry attempt if budget and deadline allow.
  bool schedule_retry(std::uint64_t call_id);
  void deliver_response(std::uint64_t call_id, const IncomingMessage& msg);
  /// Single point of delivery: erases the call (cancelling every timer and
  /// orphaning every outstanding seq) and then invokes the callback.
  void complete_call(std::uint64_t call_id, Result<Bytes> result);
  void remember_cancelled(std::uint64_t seq);

  Executor& exec_;
  Transport& transport_;
  Endpoint self_;
  bool started_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_call_id_ = 1;
  CallPolicy policy_;
  std::unordered_map<MsgType, ServerHandler> handlers_;
  std::unordered_map<std::uint64_t, CallState> calls_;     // by call id
  std::unordered_map<std::uint64_t, Attempt> pending_;     // by seq
  /// Attempts whose timer fired while their call lived on (retrying or
  /// hedged): a response here is the paper's spurious time-out, and it can
  /// still complete the call. Entries die with their call.
  std::unordered_map<std::uint64_t, LateAttempt> late_;
  /// Seqs orphaned by call completion (hedge losers, superseded retries).
  /// Their responses are expected duplicates, counted and dropped. Bounded
  /// FIFO so a seq leaked by a never-answering server cannot grow it.
  std::unordered_set<std::uint64_t> cancelled_;
  std::deque<std::uint64_t> cancelled_order_;
  RttObserver observer_;
};

}  // namespace ew
