
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/call_policy.cpp" "src/net/CMakeFiles/ew_net.dir/call_policy.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/call_policy.cpp.o.d"
  "/root/repo/src/net/inproc_transport.cpp" "src/net/CMakeFiles/ew_net.dir/inproc_transport.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/inproc_transport.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/ew_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/ew_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/reactor.cpp" "src/net/CMakeFiles/ew_net.dir/reactor.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/reactor.cpp.o.d"
  "/root/repo/src/net/shard_pool.cpp" "src/net/CMakeFiles/ew_net.dir/shard_pool.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/shard_pool.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/ew_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/tcp_transport.cpp" "src/net/CMakeFiles/ew_net.dir/tcp_transport.cpp.o" "gcc" "src/net/CMakeFiles/ew_net.dir/tcp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ew_obs.dir/DependInfo.cmake"
  "/root/repo/src/forecast/CMakeFiles/ew_forecast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
