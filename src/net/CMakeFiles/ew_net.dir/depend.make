# Empty dependencies file for ew_net.
# This may be replaced when dependencies are built.
