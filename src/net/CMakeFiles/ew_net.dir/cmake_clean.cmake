file(REMOVE_RECURSE
  "CMakeFiles/ew_net.dir/call_policy.cpp.o"
  "CMakeFiles/ew_net.dir/call_policy.cpp.o.d"
  "CMakeFiles/ew_net.dir/inproc_transport.cpp.o"
  "CMakeFiles/ew_net.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/ew_net.dir/node.cpp.o"
  "CMakeFiles/ew_net.dir/node.cpp.o.d"
  "CMakeFiles/ew_net.dir/packet.cpp.o"
  "CMakeFiles/ew_net.dir/packet.cpp.o.d"
  "CMakeFiles/ew_net.dir/reactor.cpp.o"
  "CMakeFiles/ew_net.dir/reactor.cpp.o.d"
  "CMakeFiles/ew_net.dir/shard_pool.cpp.o"
  "CMakeFiles/ew_net.dir/shard_pool.cpp.o.d"
  "CMakeFiles/ew_net.dir/tcp.cpp.o"
  "CMakeFiles/ew_net.dir/tcp.cpp.o.d"
  "CMakeFiles/ew_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/ew_net.dir/tcp_transport.cpp.o.d"
  "libew_net.a"
  "libew_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
