file(REMOVE_RECURSE
  "libew_net.a"
)
