// The EveryWare packet layer ("lingua franca", paper Section 2.1).
//
// The paper layered "rudimentary packet semantics" over TCP streams "to
// enable message typing and delineate record boundaries", following the
// netperf/NWS packet format. We reproduce that: every message travels as a
// fixed header (magic, version, kind, application message type, sequence
// number, payload length) followed by an opaque payload. FrameParser
// re-assembles packets from an arbitrary-chunked byte stream, which is what
// makes the same protocol code usable over both TCP and the simulated
// transport.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/result.hpp"
#include "common/serialize.hpp"

namespace ew {

/// Application-level message type (the "message typing" of Section 2.1).
using MsgType = std::uint16_t;

/// Transport-level packet role.
enum class PacketKind : std::uint8_t {
  kOneWay = 0,    // fire-and-forget message
  kRequest = 1,   // expects a kResponse with the same sequence number
  kResponse = 2,  // reply to a kRequest
};

/// A framed message.
struct Packet {
  PacketKind kind = PacketKind::kOneWay;
  MsgType type = 0;
  std::uint64_t seq = 0;
  Bytes payload;
};

namespace wire {
/// 'EVWR' — rejects cross-talk from non-EveryWare peers on the same port.
constexpr std::uint32_t kMagic = 0x45565752;
/// v2 added the payload checksum field (and grew the header by 4 bytes).
constexpr std::uint8_t kVersion = 2;
/// Header: magic(4) version(1) kind(1) type(2) seq(8) length(4) checksum(4).
constexpr std::size_t kHeaderSize = 24;
/// Upper bound on payload size; a stream producing a larger length field is
/// treated as corrupt rather than buffered indefinitely.
constexpr std::size_t kMaxPayload = 16 * 1024 * 1024;

/// FNV-1a (32-bit) over the frame's type, seq (both little-endian) and
/// payload bytes. The magic catches cross-talk; this catches bit damage in
/// flight — the paper's streams crossed enough flaky links that trusting
/// TCP's 16-bit sum alone is optimistic for a months-long run.
std::uint32_t checksum(MsgType type, std::uint64_t seq,
                       std::span<const std::uint8_t> payload);
}  // namespace wire

/// Serialize a packet (header + payload) onto a byte buffer.
Bytes encode_packet(const Packet& p);

/// A parsed frame whose payload is a view into the parser's reassembly
/// buffer — no copy. The span is valid only until the parser is touched
/// again (feed / recv_buffer / commit / next / next_view); a handler that
/// retains the payload must copy it out (to_packet does exactly that).
struct FrameView {
  PacketKind kind = PacketKind::kOneWay;
  MsgType type = 0;
  std::uint64_t seq = 0;
  std::span<const std::uint8_t> payload;

  /// Copy-out for handlers that keep the payload past the view's lifetime.
  [[nodiscard]] Packet to_packet() const {
    Packet p;
    p.kind = kind;
    p.type = type;
    p.seq = seq;
    p.payload.assign(payload.begin(), payload.end());
    return p;
  }
};

/// Incremental stream parser: feed arbitrary byte chunks, pop whole packets.
/// After any error the parser is poisoned (the stream framing is lost and the
/// connection must be dropped, as the paper's packet layer does).
///
/// Two input paths and two output paths share one reassembly buffer:
///   * feed() copies a chunk in; recv_buffer()/commit() lets recv(2) write
///     directly into the buffer instead (no intermediate chunk copy).
///   * next() pops an owning Packet; next_view() returns a zero-copy
///     FrameView into the buffer for hot paths that only *look* at the
///     payload before deciding whether to keep it.
class FrameParser {
 public:
  /// Append raw bytes received from the stream.
  void feed(std::span<const std::uint8_t> data);

  /// Writable tail of the reassembly buffer, at least `min_bytes` long —
  /// pass it to recv(2)/recv_into and commit() what actually arrived. Any
  /// outstanding FrameView is invalidated (the buffer may compact or grow).
  [[nodiscard]] std::span<std::uint8_t> recv_buffer(std::size_t min_bytes = 16384);
  /// Declare `n` bytes of the last recv_buffer() span valid stream data.
  void commit(std::size_t n);

  /// Extract the next complete packet, if any.
  /// Returns: packet; or Err::kProtocol if the stream is corrupt; or
  /// Err::kUnavailable when more bytes are needed (not an error condition).
  Result<Packet> next();

  /// Zero-copy variant of next(): the returned view's payload points into
  /// the reassembly buffer and is valid only until the parser is touched
  /// again. Same error contract as next().
  Result<FrameView> next_view();

  [[nodiscard]] bool poisoned() const { return poisoned_; }
  [[nodiscard]] std::size_t buffered() const { return end_ - pos_; }

 private:
  /// Parse+validate the header at pos_ without consuming. On success the
  /// view's payload spans the frame's payload bytes in buf_.
  Result<FrameView> peek_frame();

  Bytes buf_;             // storage; only [pos_, end_) holds stream bytes
  std::size_t pos_ = 0;   // consumed prefix
  std::size_t end_ = 0;   // valid-data end (buf_.size() is raw capacity)
  bool poisoned_ = false;
};

}  // namespace ew
