// Abstract message transport.
//
// A Transport moves packets between endpoints. Delivery is best-effort and
// asynchronous — exactly the guarantees the paper's toolkit assumes (failure
// detection happens above, via forecast-driven time-outs). Implementations:
//   * InProcTransport  — same-process delivery through an Executor (tests),
//   * sim::SimTransport — simulator delivery with latency/loss/partitions,
//   * TcpTransport      — real TCP sockets with the packet framing layer.
#pragma once

#include <functional>
#include <memory>

#include "common/result.hpp"
#include "net/endpoint.hpp"
#include "net/packet.hpp"

namespace ew {

/// Delivered message plus the address of its sender (when known).
struct IncomingMessage {
  Endpoint from;
  Packet packet;
};

/// Handler invoked for each packet delivered to a bound endpoint.
using PacketHandler = std::function<void(IncomingMessage)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Start receiving for `self`; `handler` is invoked on the transport's
  /// executor thread for every delivered packet. Binding an endpoint twice
  /// returns kRejected.
  virtual Status bind(const Endpoint& self, PacketHandler handler) = 0;

  /// Stop receiving for `self`; in-flight packets to it are dropped.
  virtual void unbind(const Endpoint& self) = 0;

  /// Queue `packet` for delivery from `from` to `to`. A returned error means
  /// the send is known-failed immediately (e.g. connection refused); success
  /// does NOT guarantee delivery.
  virtual Status send(const Endpoint& from, const Endpoint& to, Packet packet) = 0;
};

}  // namespace ew
