// Executor: the event-scheduling substrate every toolkit component runs on.
//
// All EveryWare servers are single-threaded and event-driven — the paper
// avoided threads and fork() entirely for portability (Section 5.1). An
// Executor provides "call me later" (timers) and "call me soon" (posted
// work). Two implementations exist:
//   * sim::EventQueue (src/sim) — virtual time, deterministic,
//   * Reactor (src/net/reactor.hpp) — real time, select()-based.
#pragma once

#include <cstdint>
#include <functional>

#include "common/clock.hpp"

namespace ew {

/// Handle to a scheduled timer; used for cancellation.
using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

class Executor {
 public:
  virtual ~Executor() = default;

  /// The clock this executor advances.
  [[nodiscard]] virtual const Clock& clock() const = 0;
  [[nodiscard]] TimePoint now() const { return clock().now(); }

  /// Run `fn` as soon as possible (after the current event completes).
  virtual void post(std::function<void()> fn) = 0;

  /// Run `fn` once after `delay`. Returns a cancellation handle.
  virtual TimerId schedule(Duration delay, std::function<void()> fn) = 0;

  /// Cancel a pending timer. Cancelling an already-fired or invalid id is a
  /// harmless no-op (components race with their own timeouts constantly).
  virtual void cancel(TimerId id) = 0;
};

}  // namespace ew
