#include "net/tcp_transport.hpp"

#include <array>
#include <utility>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace ew {

namespace {

/// Routing prefix parsed straight off a frame view. The endpoints own their
/// strings (they outlive the handler call); `body` stays a view into the
/// parser's buffer and is copied only on delivery.
struct RoutedView {
  Endpoint src;
  Endpoint dst;
  std::span<const std::uint8_t> body;
};

Result<RoutedView> unroute_view(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  auto sh = r.str();
  if (!sh) return sh.error();
  auto sp = r.u16();
  if (!sp) return sp.error();
  auto dh = r.str();
  if (!dh) return dh.error();
  auto dp = r.u16();
  if (!dp) return dp.error();
  RoutedView out;
  out.src = Endpoint{std::move(*sh), *sp};
  out.dst = Endpoint{std::move(*dh), *dp};
  out.body = r.rest();
  return out;
}

/// Frames fed to one sendmsg(2); matches the iovec cap in send_some.
constexpr std::size_t kFlushBatch = 64;

}  // namespace

Bytes encode_routed_frame(const Packet& p, const Endpoint& src,
                          const Endpoint& dst) {
  // Wire payload = routing prefix + application payload; sized exactly so
  // the whole frame is one allocation written front to back.
  const std::size_t routing =
      4 + src.host.size() + 2 + 4 + dst.host.size() + 2;
  const std::size_t wire_len = routing + p.payload.size();
  Writer w(wire::kHeaderSize + wire_len);
  w.u32(wire::kMagic);
  w.u8(wire::kVersion);
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u16(p.type);
  w.u64(p.seq);
  w.u32(static_cast<std::uint32_t>(wire_len));
  w.u32(0);  // checksum placeholder — covers bytes not yet written
  w.str(src.host);
  w.u16(src.port);
  w.str(dst.host);
  w.u16(dst.port);
  w.raw(p.payload);
  w.patch_u32(wire::kHeaderSize - 4,
              wire::checksum(p.type, p.seq,
                             std::span<const std::uint8_t>(w.bytes())
                                 .subspan(wire::kHeaderSize)));
  return w.take();
}

TcpTransport::TcpTransport(Reactor& reactor, std::string_view metrics_label)
    : reactor_(reactor),
      backpressure_rejects_(
          &obs::registry().counter(obs::names::kNetBackpressureRejects)),
      frames_truncated_(
          &obs::registry().counter(obs::names::kNetFramesTruncated)),
      conns_open_(&obs::registry().gauge(obs::names::kNetConnsOpen)),
      outbox_bytes_(&obs::registry().gauge(obs::names::kNetOutboxBytes)) {
  if (!metrics_label.empty()) {
    auto& reg = obs::registry();
    backpressure_rejects_shard_ =
        &reg.counter(obs::names::kNetBackpressureRejects, metrics_label);
    frames_truncated_shard_ =
        &reg.counter(obs::names::kNetFramesTruncated, metrics_label);
    conns_open_shard_ = &reg.gauge(obs::names::kNetConnsOpen, metrics_label);
    outbox_bytes_shard_ =
        &reg.gauge(obs::names::kNetOutboxBytes, metrics_label);
  }
}

TcpTransport::~TcpTransport() {
  for (auto& [ep, l] : listeners_) reactor_.unwatch_readable(l.fd.get());
  for (auto& [fd, c] : conns_) {
    reactor_.unwatch_readable(fd);
    if (c.writable_watched) reactor_.unwatch_writable(fd);
    if (c.connect_timer != kInvalidTimer) reactor_.cancel(c.connect_timer);
  }
  account_conns(-static_cast<double>(conns_.size()));
  account_outbox(-static_cast<std::ptrdiff_t>(total_outbox_bytes_));
}

void TcpTransport::account_outbox(std::ptrdiff_t delta) {
  total_outbox_bytes_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(total_outbox_bytes_) + delta);
  outbox_bytes_->add(static_cast<double>(delta));
  if (outbox_bytes_shard_ != nullptr) {
    outbox_bytes_shard_->add(static_cast<double>(delta));
  }
}

void TcpTransport::account_conns(double delta) {
  conns_open_->add(delta);
  if (conns_open_shard_ != nullptr) conns_open_shard_->add(delta);
}

Status TcpTransport::bind(const Endpoint& self, PacketHandler handler) {
  if (listeners_.contains(self)) {
    return Status(Err::kRejected, "endpoint already bound: " + self.to_string());
  }
  auto fd = tcp_listen(self.port, /*backlog=*/4096, reuse_port_);
  if (!fd) return fd.error();
  const int raw = fd->get();
  listeners_.emplace(self, Listener{std::move(*fd), std::move(handler)});
  reactor_.watch_readable(raw, [this, raw] { on_listener_readable(raw); });
  return {};
}

void TcpTransport::unbind(const Endpoint& self) {
  auto it = listeners_.find(self);
  if (it == listeners_.end()) return;
  reactor_.unwatch_readable(it->second.fd.get());
  listeners_.erase(it);
}

int TcpTransport::ensure_connection(const Endpoint& to, Status& status) {
  if (auto it = peer_conn_.find(to); it != peer_conn_.end()) return it->second;
  auto started = tcp_connect_start(to);
  if (!started) {
    status = started.error();
    return -1;
  }
  const int raw = started->fd.get();
  const std::uint64_t id = next_conn_id_++;
  Conn conn;
  conn.id = id;
  conn.fd = std::move(started->fd);
  conn.peer = to;
  conn.connecting = !started->completed;
  conns_.emplace(raw, std::move(conn));
  peer_conn_[to] = raw;
  account_conns(1);
  reactor_.watch_readable(raw, [this, raw] { on_conn_readable(raw); });
  if (!started->completed) {
    // The handshake verdict selects writable (success and failure alike);
    // the timer bounds a peer that answers with silence. Both guards check
    // the conn id: the fd number may belong to a different connection by
    // the time they run.
    Conn& c = conns_.at(raw);
    c.writable_watched = true;
    reactor_.watch_writable(raw, [this, raw] { on_conn_writable(raw); });
    c.connect_timer = reactor_.schedule(connect_timeout_, [this, raw, id] {
      auto cit = conns_.find(raw);
      if (cit == conns_.end() || cit->second.id != id) return;
      cit->second.connect_timer = kInvalidTimer;
      if (!cit->second.connecting) return;
      EW_DEBUG << "TcpTransport: connect to " << cit->second.peer.to_string()
               << " timed out";
      close_conn(raw);
    });
  }
  return raw;
}

Status TcpTransport::send(const Endpoint& from, const Endpoint& to, Packet packet) {
  Status status;
  const int fd = ensure_connection(to, status);
  if (fd < 0) return status;
  Bytes frame = encode_routed_frame(packet, from, to);
  auto& conn = conns_.at(fd);
  if (conn.outbox_bytes + frame.size() > max_outbox_bytes_) {
    backpressure_rejects_->inc();
    if (backpressure_rejects_shard_ != nullptr) {
      backpressure_rejects_shard_->inc();
    }
    return Status(Err::kOverloaded,
                  "outbox full to " + to.to_string() + " (" +
                      std::to_string(conn.outbox_bytes) + " bytes pending)");
  }
  conn.outbox_bytes += frame.size();
  account_outbox(static_cast<std::ptrdiff_t>(frame.size()));
  conn.outbox.push_back(std::move(frame));
  // Still dialling: the frame rides the outbox until the handshake verdict
  // arrives via on_conn_writable. Queueing is success — delivery was never
  // guaranteed (see Transport::send).
  if (conn.connecting) return {};
  return flush(fd);
}

Status TcpTransport::flush(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return Status(Err::kClosed, "connection gone");
  Conn& c = it->second;
  while (!c.outbox.empty()) {
    // Gather the head of the ring into one sendmsg: the front frame from
    // its partial-send offset, then whole frames. No bytes move — the
    // iovecs point straight at the queued buffers.
    std::array<std::span<const std::uint8_t>, kFlushBatch> segs;
    std::size_t nsegs = 0;
    std::size_t attempted = 0;
    for (const Bytes& f : c.outbox) {
      std::span<const std::uint8_t> seg(f);
      if (nsegs == 0) seg = seg.subspan(c.outbox_head);
      segs[nsegs++] = seg;
      attempted += seg.size();
      if (nsegs == segs.size()) break;
    }
    auto n = send_some(c.fd, std::span(segs.data(), nsegs));
    if (!n) {
      close_conn(fd);
      return n.error();
    }
    if (*n > 0) {
      c.outbox_bytes -= *n;
      account_outbox(-static_cast<std::ptrdiff_t>(*n));
      // Retire fully-sent frames; a partial tail just advances the head
      // offset (the next flush resumes mid-frame, still copy-free).
      std::size_t sent = *n;
      while (sent > 0) {
        const std::size_t front_left = c.outbox.front().size() - c.outbox_head;
        if (sent >= front_left) {
          sent -= front_left;
          c.outbox.pop_front();
          c.outbox_head = 0;
        } else {
          c.outbox_head += sent;
          sent = 0;
        }
      }
    }
    if (*n < attempted) {
      // Socket buffer full (or short write); resume when writable.
      if (!c.writable_watched) {
        c.writable_watched = true;
        reactor_.watch_writable(fd, [this, fd] { on_conn_writable(fd); });
      }
      return {};
    }
  }
  if (c.writable_watched && !c.connecting) {
    c.writable_watched = false;
    reactor_.unwatch_writable(fd);
  }
  return {};
}

void TcpTransport::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  reactor_.unwatch_readable(fd);
  if (it->second.writable_watched) reactor_.unwatch_writable(fd);
  if (it->second.connect_timer != kInvalidTimer) {
    reactor_.cancel(it->second.connect_timer);
  }
  account_outbox(-static_cast<std::ptrdiff_t>(it->second.outbox_bytes));
  if (it->second.peer.valid()) {
    auto pit = peer_conn_.find(it->second.peer);
    if (pit != peer_conn_.end() && pit->second == fd) peer_conn_.erase(pit);
  }
  conns_.erase(it);
  account_conns(-1);
}

void TcpTransport::on_conn_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (c.connecting) {
    const Status verdict = tcp_finish_connect(c.fd, c.peer);
    if (!verdict.ok()) {
      EW_DEBUG << "TcpTransport: async connect to " << c.peer.to_string()
               << " failed: " << verdict.to_string();
      close_conn(fd);  // queued frames die with the conn; Node times out
      return;
    }
    c.connecting = false;
    if (c.connect_timer != kInvalidTimer) {
      reactor_.cancel(c.connect_timer);
      c.connect_timer = kInvalidTimer;
    }
  }
  (void)flush(fd);  // drains the outbox; unwatches writable once empty
}

void TcpTransport::on_listener_readable(int listener_fd) {
  for (;;) {
    // Find the listener by fd (there are at most a handful).
    const Listener* listener = nullptr;
    for (const auto& [ep, l] : listeners_) {
      if (l.fd.get() == listener_fd) {
        listener = &l;
        break;
      }
    }
    if (listener == nullptr) return;
    auto accepted = tcp_accept(listener->fd);
    if (!accepted) return;  // kUnavailable: drained
    const int raw = accepted->get();
    Conn conn;
    conn.id = next_conn_id_++;
    conn.fd = std::move(*accepted);
    conns_.emplace(raw, std::move(conn));
    account_conns(1);
    reactor_.watch_readable(raw, [this, raw] { on_conn_readable(raw); });
  }
}

void TcpTransport::on_conn_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Zero-copy receive: recv(2) writes straight into the parser's reassembly
  // buffer — no intermediate chunk, no feed() copy. 4 KiB floor: the parser
  // grows geometrically for bigger frames, and a process holding thousands
  // of idle connections cannot afford a 16 KiB-resident buffer per conn.
  auto n = recv_into(it->second.fd, it->second.parser.recv_buffer(4096));
  if (!n) {
    if (n.code() == Err::kClosed) {
      // Peer half-closed. Frames already complete in the parser buffer must
      // still be delivered; only a partial trailing frame is lost, and that
      // loss is counted rather than silent.
      const std::uint64_t id = it->second.id;
      dispatch_frames(fd);
      auto again = conns_.find(fd);
      if (again == conns_.end() || again->second.id != id) return;
      if (again->second.parser.buffered() > 0 && !again->second.parser.poisoned()) {
        frames_truncated_->inc();
        if (frames_truncated_shard_ != nullptr) frames_truncated_shard_->inc();
        EW_DEBUG << "TcpTransport: peer closed mid-frame ("
                 << again->second.parser.buffered() << " bytes dropped)";
      }
    }
    close_conn(fd);
    return;
  }
  if (*n == 0) return;
  it->second.parser.commit(*n);
  dispatch_frames(fd);
}

void TcpTransport::dispatch_frames(int fd) {
  // Handlers run user code: they may close this connection, accept a new
  // one that reuses the fd number, or unbind the very listener being
  // dispatched to. Every iteration therefore re-finds the connection and
  // verifies it is still the same one (by id), and the handler is invoked
  // through a copy so an unbind mid-call cannot destroy the callable under
  // our feet.
  std::uint64_t conn_id = 0;
  for (;;) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // a handler closed us
    if (conn_id == 0) {
      conn_id = it->second.id;
    } else if (it->second.id != conn_id) {
      return;  // fd number reused by a different connection mid-loop
    }
    // Zero-copy pop: the view's payload points into the parser buffer and
    // stays valid until the parser is touched again — i.e. through the
    // routing parse and the delivery copy below, but not into the handler.
    auto view = it->second.parser.next_view();
    if (!view) {
      if (view.code() == Err::kProtocol) {
        EW_WARN << "TcpTransport: corrupt stream from "
                << it->second.peer.to_string() << ", dropping connection";
        close_conn(fd);
      }
      return;
    }
    auto routed = unroute_view(view->payload);
    if (!routed) {
      EW_WARN << "TcpTransport: bad routing header, dropping connection";
      close_conn(fd);
      return;
    }
    // Learn/refresh the peer's routable address so replies reuse this
    // connection instead of dialling back.
    if (routed->src.valid()) {
      Conn& c = it->second;
      if (c.peer != routed->src) {
        if (c.peer.valid()) {
          auto pit = peer_conn_.find(c.peer);
          if (pit != peer_conn_.end() && pit->second == fd) peer_conn_.erase(pit);
        }
        c.peer = routed->src;
        peer_conn_[c.peer] = fd;
      }
    }
    auto lit = listeners_.find(routed->dst);
    if (lit == listeners_.end()) {
      // Frame already consumed by next_view(); nothing to copy, move on.
      EW_DEBUG << "TcpTransport: no local endpoint " << routed->dst.to_string();
      continue;
    }
    // A local endpoint takes delivery: copy the payload out of the parser
    // buffer now (the one copy on the receive path).
    Packet inner;
    inner.kind = view->kind;
    inner.type = view->type;
    inner.seq = view->seq;
    inner.payload.assign(routed->body.begin(), routed->body.end());
    const PacketHandler handler = lit->second.handler;
    handler(IncomingMessage{std::move(routed->src), std::move(inner)});
  }
}

}  // namespace ew
