#include "net/tcp_transport.hpp"

#include <utility>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace ew {

namespace {

/// Wrap a packet's payload with (src, dst) routing for the wire.
Packet route(const Packet& p, const Endpoint& src, const Endpoint& dst) {
  Writer w(p.payload.size() + 64);
  w.str(src.host);
  w.u16(src.port);
  w.str(dst.host);
  w.u16(dst.port);
  w.raw(p.payload);
  Packet out;
  out.kind = p.kind;
  out.type = p.type;
  out.seq = p.seq;
  out.payload = w.take();
  return out;
}

struct Routed {
  Endpoint src;
  Endpoint dst;
  Packet inner;
};

Result<Routed> unroute(Packet&& p) {
  Reader r(p.payload);
  auto sh = r.str();
  if (!sh) return sh.error();
  auto sp = r.u16();
  if (!sp) return sp.error();
  auto dh = r.str();
  if (!dh) return dh.error();
  auto dp = r.u16();
  if (!dp) return dp.error();
  auto body = r.raw(r.remaining());
  Routed out;
  out.src = Endpoint{std::move(*sh), *sp};
  out.dst = Endpoint{std::move(*dh), *dp};
  out.inner.kind = p.kind;
  out.inner.type = p.type;
  out.inner.seq = p.seq;
  out.inner.payload = std::move(*body);
  return out;
}

/// Once flushed bytes pass this mark the outbox prefix is erased; bounds
/// the memory a long-lived, slowly draining connection pins.
constexpr std::size_t kOutboxCompactThreshold = 1 << 20;

}  // namespace

TcpTransport::TcpTransport(Reactor& reactor)
    : reactor_(reactor),
      backpressure_rejects_(
          &obs::registry().counter(obs::names::kNetBackpressureRejects)),
      frames_truncated_(
          &obs::registry().counter(obs::names::kNetFramesTruncated)),
      conns_open_(&obs::registry().gauge(obs::names::kNetConnsOpen)),
      outbox_bytes_(&obs::registry().gauge(obs::names::kNetOutboxBytes)) {}

TcpTransport::~TcpTransport() {
  for (auto& [ep, l] : listeners_) reactor_.unwatch_readable(l.fd.get());
  for (auto& [fd, c] : conns_) {
    reactor_.unwatch_readable(fd);
    if (c.writable_watched) reactor_.unwatch_writable(fd);
    if (c.connect_timer != kInvalidTimer) reactor_.cancel(c.connect_timer);
  }
  conns_open_->add(-static_cast<double>(conns_.size()));
  account_outbox(-static_cast<std::ptrdiff_t>(total_outbox_bytes_));
}

void TcpTransport::account_outbox(std::ptrdiff_t delta) {
  total_outbox_bytes_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(total_outbox_bytes_) + delta);
  outbox_bytes_->add(static_cast<double>(delta));
}

Status TcpTransport::bind(const Endpoint& self, PacketHandler handler) {
  if (listeners_.contains(self)) {
    return Status(Err::kRejected, "endpoint already bound: " + self.to_string());
  }
  auto fd = tcp_listen(self.port);
  if (!fd) return fd.error();
  const int raw = fd->get();
  listeners_.emplace(self, Listener{std::move(*fd), std::move(handler)});
  reactor_.watch_readable(raw, [this, raw] { on_listener_readable(raw); });
  return {};
}

void TcpTransport::unbind(const Endpoint& self) {
  auto it = listeners_.find(self);
  if (it == listeners_.end()) return;
  reactor_.unwatch_readable(it->second.fd.get());
  listeners_.erase(it);
}

int TcpTransport::ensure_connection(const Endpoint& to, Status& status) {
  if (auto it = peer_conn_.find(to); it != peer_conn_.end()) return it->second;
  auto started = tcp_connect_start(to);
  if (!started) {
    status = started.error();
    return -1;
  }
  const int raw = started->fd.get();
  const std::uint64_t id = next_conn_id_++;
  Conn conn;
  conn.id = id;
  conn.fd = std::move(started->fd);
  conn.peer = to;
  conn.connecting = !started->completed;
  conns_.emplace(raw, std::move(conn));
  peer_conn_[to] = raw;
  conns_open_->add(1);
  reactor_.watch_readable(raw, [this, raw] { on_conn_readable(raw); });
  if (!started->completed) {
    // The handshake verdict selects writable (success and failure alike);
    // the timer bounds a peer that answers with silence. Both guards check
    // the conn id: the fd number may belong to a different connection by
    // the time they run.
    Conn& c = conns_.at(raw);
    c.writable_watched = true;
    reactor_.watch_writable(raw, [this, raw] { on_conn_writable(raw); });
    c.connect_timer = reactor_.schedule(connect_timeout_, [this, raw, id] {
      auto cit = conns_.find(raw);
      if (cit == conns_.end() || cit->second.id != id) return;
      cit->second.connect_timer = kInvalidTimer;
      if (!cit->second.connecting) return;
      EW_DEBUG << "TcpTransport: connect to " << cit->second.peer.to_string()
               << " timed out";
      close_conn(raw);
    });
  }
  return raw;
}

Status TcpTransport::send(const Endpoint& from, const Endpoint& to, Packet packet) {
  Status status;
  const int fd = ensure_connection(to, status);
  if (fd < 0) return status;
  const Bytes frame = encode_packet(route(packet, from, to));
  auto& conn = conns_.at(fd);
  const std::size_t pending = conn.outbox.size() - conn.outbox_pos;
  if (pending + frame.size() > max_outbox_bytes_) {
    backpressure_rejects_->inc();
    return Status(Err::kOverloaded,
                  "outbox full to " + to.to_string() + " (" +
                      std::to_string(pending) + " bytes pending)");
  }
  conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
  account_outbox(static_cast<std::ptrdiff_t>(frame.size()));
  // Still dialling: the frame rides the outbox until the handshake verdict
  // arrives via on_conn_writable. Queueing is success — delivery was never
  // guaranteed (see Transport::send).
  if (conn.connecting) return {};
  return flush(fd);
}

Status TcpTransport::flush(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return Status(Err::kClosed, "connection gone");
  Conn& c = it->second;
  while (c.outbox_pos < c.outbox.size()) {
    auto n = send_some(c.fd, std::span(c.outbox).subspan(c.outbox_pos));
    if (!n) {
      close_conn(fd);
      return n.error();
    }
    if (*n == 0) {
      // Socket buffer full; resume when writable.
      if (!c.writable_watched) {
        c.writable_watched = true;
        reactor_.watch_writable(fd, [this, fd] { on_conn_writable(fd); });
      }
      if (c.outbox_pos >= kOutboxCompactThreshold) {
        c.outbox.erase(c.outbox.begin(),
                       c.outbox.begin() + static_cast<std::ptrdiff_t>(c.outbox_pos));
        c.outbox_pos = 0;
      }
      return {};
    }
    c.outbox_pos += *n;
    account_outbox(-static_cast<std::ptrdiff_t>(*n));
  }
  c.outbox.clear();
  c.outbox_pos = 0;
  if (c.writable_watched) {
    c.writable_watched = false;
    reactor_.unwatch_writable(fd);
  }
  return {};
}

void TcpTransport::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  reactor_.unwatch_readable(fd);
  if (it->second.writable_watched) reactor_.unwatch_writable(fd);
  if (it->second.connect_timer != kInvalidTimer) {
    reactor_.cancel(it->second.connect_timer);
  }
  account_outbox(-static_cast<std::ptrdiff_t>(it->second.outbox.size() -
                                              it->second.outbox_pos));
  if (it->second.peer.valid()) {
    auto pit = peer_conn_.find(it->second.peer);
    if (pit != peer_conn_.end() && pit->second == fd) peer_conn_.erase(pit);
  }
  conns_.erase(it);
  conns_open_->add(-1);
}

void TcpTransport::on_conn_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (c.connecting) {
    const Status verdict = tcp_finish_connect(c.fd, c.peer);
    if (!verdict.ok()) {
      EW_DEBUG << "TcpTransport: async connect to " << c.peer.to_string()
               << " failed: " << verdict.to_string();
      close_conn(fd);  // queued frames die with the conn; Node times out
      return;
    }
    c.connecting = false;
    if (c.connect_timer != kInvalidTimer) {
      reactor_.cancel(c.connect_timer);
      c.connect_timer = kInvalidTimer;
    }
  }
  (void)flush(fd);  // drains the outbox; unwatches writable once empty
}

void TcpTransport::on_listener_readable(int listener_fd) {
  for (;;) {
    // Find the listener by fd (there are at most a handful).
    const Listener* listener = nullptr;
    for (const auto& [ep, l] : listeners_) {
      if (l.fd.get() == listener_fd) {
        listener = &l;
        break;
      }
    }
    if (listener == nullptr) return;
    auto accepted = tcp_accept(listener->fd);
    if (!accepted) return;  // kUnavailable: drained
    const int raw = accepted->get();
    Conn conn;
    conn.id = next_conn_id_++;
    conn.fd = std::move(*accepted);
    conns_.emplace(raw, std::move(conn));
    conns_open_->add(1);
    reactor_.watch_readable(raw, [this, raw] { on_conn_readable(raw); });
  }
}

void TcpTransport::on_conn_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Bytes chunk;
  auto n = recv_some(it->second.fd, chunk);
  if (!n) {
    if (n.code() == Err::kClosed) {
      // Peer half-closed. Frames already complete in the parser buffer must
      // still be delivered; only a partial trailing frame is lost, and that
      // loss is counted rather than silent.
      const std::uint64_t id = it->second.id;
      dispatch_frames(fd);
      auto again = conns_.find(fd);
      if (again == conns_.end() || again->second.id != id) return;
      if (again->second.parser.buffered() > 0 && !again->second.parser.poisoned()) {
        frames_truncated_->inc();
        EW_DEBUG << "TcpTransport: peer closed mid-frame ("
                 << again->second.parser.buffered() << " bytes dropped)";
      }
    }
    close_conn(fd);
    return;
  }
  if (*n == 0) return;
  it->second.parser.feed(chunk);
  dispatch_frames(fd);
}

void TcpTransport::dispatch_frames(int fd) {
  // Handlers run user code: they may close this connection, accept a new
  // one that reuses the fd number, or unbind the very listener being
  // dispatched to. Every iteration therefore re-finds the connection and
  // verifies it is still the same one (by id), and the handler is invoked
  // through a copy so an unbind mid-call cannot destroy the callable under
  // our feet.
  std::uint64_t conn_id = 0;
  for (;;) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // a handler closed us
    if (conn_id == 0) {
      conn_id = it->second.id;
    } else if (it->second.id != conn_id) {
      return;  // fd number reused by a different connection mid-loop
    }
    auto pkt = it->second.parser.next();
    if (!pkt) {
      if (pkt.code() == Err::kProtocol) {
        EW_WARN << "TcpTransport: corrupt stream from "
                << it->second.peer.to_string() << ", dropping connection";
        close_conn(fd);
      }
      return;
    }
    auto routed = unroute(std::move(*pkt));
    if (!routed) {
      EW_WARN << "TcpTransport: bad routing header, dropping connection";
      close_conn(fd);
      return;
    }
    // Learn/refresh the peer's routable address so replies reuse this
    // connection instead of dialling back.
    if (routed->src.valid()) {
      Conn& c = it->second;
      if (c.peer != routed->src) {
        if (c.peer.valid()) {
          auto pit = peer_conn_.find(c.peer);
          if (pit != peer_conn_.end() && pit->second == fd) peer_conn_.erase(pit);
        }
        c.peer = routed->src;
        peer_conn_[c.peer] = fd;
      }
    }
    auto lit = listeners_.find(routed->dst);
    if (lit == listeners_.end()) {
      EW_DEBUG << "TcpTransport: no local endpoint " << routed->dst.to_string();
      continue;
    }
    const PacketHandler handler = lit->second.handler;
    handler(IncomingMessage{routed->src, std::move(routed->inner)});
  }
}

}  // namespace ew
