#include "net/tcp_transport.hpp"

#include <utility>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace ew {

namespace {

/// Wrap a packet's payload with (src, dst) routing for the wire.
Packet route(const Packet& p, const Endpoint& src, const Endpoint& dst) {
  Writer w(p.payload.size() + 64);
  w.str(src.host);
  w.u16(src.port);
  w.str(dst.host);
  w.u16(dst.port);
  w.raw(p.payload);
  Packet out;
  out.kind = p.kind;
  out.type = p.type;
  out.seq = p.seq;
  out.payload = w.take();
  return out;
}

struct Routed {
  Endpoint src;
  Endpoint dst;
  Packet inner;
};

Result<Routed> unroute(Packet&& p) {
  Reader r(p.payload);
  auto sh = r.str();
  if (!sh) return sh.error();
  auto sp = r.u16();
  if (!sp) return sp.error();
  auto dh = r.str();
  if (!dh) return dh.error();
  auto dp = r.u16();
  if (!dp) return dp.error();
  auto body = r.raw(r.remaining());
  Routed out;
  out.src = Endpoint{std::move(*sh), *sp};
  out.dst = Endpoint{std::move(*dh), *dp};
  out.inner.kind = p.kind;
  out.inner.type = p.type;
  out.inner.seq = p.seq;
  out.inner.payload = std::move(*body);
  return out;
}

}  // namespace

TcpTransport::~TcpTransport() {
  for (auto& [ep, l] : listeners_) reactor_.unwatch_readable(l.fd.get());
  for (auto& [fd, c] : conns_) {
    reactor_.unwatch_readable(fd);
    if (c.writable_watched) reactor_.unwatch_writable(fd);
  }
}

Status TcpTransport::bind(const Endpoint& self, PacketHandler handler) {
  if (listeners_.contains(self)) {
    return Status(Err::kRejected, "endpoint already bound: " + self.to_string());
  }
  auto fd = tcp_listen(self.port);
  if (!fd) return fd.error();
  const int raw = fd->get();
  listeners_.emplace(self, Listener{std::move(*fd), std::move(handler)});
  reactor_.watch_readable(raw, [this, raw] { on_listener_readable(raw); });
  return {};
}

void TcpTransport::unbind(const Endpoint& self) {
  auto it = listeners_.find(self);
  if (it == listeners_.end()) return;
  reactor_.unwatch_readable(it->second.fd.get());
  listeners_.erase(it);
}

int TcpTransport::ensure_connection(const Endpoint& to, Status& status) {
  if (auto it = peer_conn_.find(to); it != peer_conn_.end()) return it->second;
  auto fd = tcp_connect(to, connect_timeout_);
  if (!fd) {
    status = fd.error();
    return -1;
  }
  const int raw = fd->get();
  Conn conn;
  conn.fd = std::move(*fd);
  conn.peer = to;
  conns_.emplace(raw, std::move(conn));
  peer_conn_[to] = raw;
  reactor_.watch_readable(raw, [this, raw] { on_conn_readable(raw); });
  return raw;
}

Status TcpTransport::send(const Endpoint& from, const Endpoint& to, Packet packet) {
  Status status;
  const int fd = ensure_connection(to, status);
  if (fd < 0) return status;
  const Bytes frame = encode_packet(route(packet, from, to));
  auto& conn = conns_.at(fd);
  conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
  return flush(fd);
}

Status TcpTransport::flush(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return Status(Err::kClosed, "connection gone");
  Conn& c = it->second;
  while (c.outbox_pos < c.outbox.size()) {
    auto n = send_some(c.fd, std::span(c.outbox).subspan(c.outbox_pos));
    if (!n) {
      close_conn(fd);
      return n.error();
    }
    if (*n == 0) {
      // Socket buffer full; resume when writable.
      if (!c.writable_watched) {
        c.writable_watched = true;
        reactor_.watch_writable(fd, [this, fd] { (void)flush(fd); });
      }
      return {};
    }
    c.outbox_pos += *n;
  }
  c.outbox.clear();
  c.outbox_pos = 0;
  if (c.writable_watched) {
    c.writable_watched = false;
    reactor_.unwatch_writable(fd);
  }
  return {};
}

void TcpTransport::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  reactor_.unwatch_readable(fd);
  if (it->second.writable_watched) reactor_.unwatch_writable(fd);
  if (it->second.peer.valid()) {
    auto pit = peer_conn_.find(it->second.peer);
    if (pit != peer_conn_.end() && pit->second == fd) peer_conn_.erase(pit);
  }
  conns_.erase(it);
}

void TcpTransport::on_listener_readable(int listener_fd) {
  for (;;) {
    // Find the listener by fd (there are at most a handful).
    const Listener* listener = nullptr;
    for (const auto& [ep, l] : listeners_) {
      if (l.fd.get() == listener_fd) {
        listener = &l;
        break;
      }
    }
    if (listener == nullptr) return;
    auto accepted = tcp_accept(listener->fd);
    if (!accepted) return;  // kUnavailable: drained
    const int raw = accepted->get();
    Conn conn;
    conn.fd = std::move(*accepted);
    conns_.emplace(raw, std::move(conn));
    reactor_.watch_readable(raw, [this, raw] { on_conn_readable(raw); });
  }
}

void TcpTransport::on_conn_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Bytes chunk;
  auto n = recv_some(it->second.fd, chunk);
  if (!n) {
    close_conn(fd);
    return;
  }
  if (*n == 0) return;
  it->second.parser.feed(chunk);
  dispatch_frames(fd);
}

void TcpTransport::dispatch_frames(int fd) {
  for (;;) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // a handler may have closed us
    auto pkt = it->second.parser.next();
    if (!pkt) {
      if (pkt.code() == Err::kProtocol) {
        EW_WARN << "TcpTransport: corrupt stream from "
                << it->second.peer.to_string() << ", dropping connection";
        close_conn(fd);
      }
      return;
    }
    auto routed = unroute(std::move(*pkt));
    if (!routed) {
      EW_WARN << "TcpTransport: bad routing header, dropping connection";
      close_conn(fd);
      return;
    }
    // Learn/refresh the peer's routable address so replies reuse this
    // connection instead of dialling back.
    if (routed->src.valid()) {
      Conn& c = conns_.at(fd);
      if (c.peer != routed->src) {
        if (c.peer.valid()) {
          auto pit = peer_conn_.find(c.peer);
          if (pit != peer_conn_.end() && pit->second == fd) peer_conn_.erase(pit);
        }
        c.peer = routed->src;
        peer_conn_[c.peer] = fd;
      }
    }
    auto lit = listeners_.find(routed->dst);
    if (lit == listeners_.end()) {
      EW_DEBUG << "TcpTransport: no local endpoint " << routed->dst.to_string();
      continue;
    }
    lit->second.handler(IncomingMessage{routed->src, std::move(routed->inner)});
  }
}

}  // namespace ew
