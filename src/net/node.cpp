#include "net/node.hpp"

#include <memory>
#include <utility>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace ew {

namespace {
Node::GlobalStats g_stats;
}

const Node::GlobalStats& Node::global_stats() { return g_stats; }
void Node::reset_global_stats() { g_stats = GlobalStats{}; }

void Responder::fail(Err code, const std::string& message) const {
  Writer w;
  w.str(message);
  emit(static_cast<std::uint8_t>(code), w.take());
}

void Responder::emit(std::uint8_t code, const Bytes& payload) const {
  if (send_) send_(code, payload);
}

Node::Node(Executor& exec, Transport& transport, Endpoint self)
    : exec_(exec), transport_(transport), self_(std::move(self)) {}

Node::~Node() { stop(); }

Status Node::start() {
  if (started_) return Status(Err::kRejected, "node already started");
  Status s = transport_.bind(self_, [this](IncomingMessage msg) {
    on_packet(std::move(msg));
  });
  started_ = s.ok();
  return s;
}

void Node::stop() {
  if (!started_) return;
  transport_.unbind(self_);
  started_ = false;
  // Abandon outstanding calls WITHOUT invoking their callbacks: stop() is
  // routinely called during teardown, after the objects owning those
  // callbacks are gone. Components that need completion guarantees keep
  // their own liveness flags.
  for (auto& [seq, p] : pending_) exec_.cancel(p.timer);
  pending_.clear();
}

void Node::handle(MsgType type, ServerHandler handler) {
  handlers_[type] = std::move(handler);
}

void Node::call(const Endpoint& to, MsgType type, Bytes payload,
                Duration timeout, CallCallback cb) {
  const std::uint64_t seq = next_seq_++;
  Packet pkt;
  pkt.kind = PacketKind::kRequest;
  pkt.type = type;
  pkt.seq = seq;
  pkt.payload = std::move(payload);

  Pending p;
  p.cb = std::move(cb);
  p.sent = exec_.now();
  p.type = type;
  p.to = to;
  p.timeout = timeout;
  p.timer = exec_.schedule(timeout, [this, seq, timeout] {
    ++g_stats.timeouts_fired;
    g_stats.timeout_wait_us += static_cast<std::uint64_t>(timeout);
    finish(seq, Error{Err::kTimeout, "request timed out"}, /*success=*/false);
  });
  pending_.emplace(seq, std::move(p));

  Status s = transport_.send(self_, to, std::move(pkt));
  if (!s.ok()) {
    finish(seq, s.error(), /*success=*/false);
  }
}

Status Node::send_oneway(const Endpoint& to, MsgType type, Bytes payload) {
  Packet pkt;
  pkt.kind = PacketKind::kOneWay;
  pkt.type = type;
  pkt.seq = 0;
  pkt.payload = std::move(payload);
  return transport_.send(self_, to, std::move(pkt));
}

void Node::on_packet(IncomingMessage msg) {
  if (msg.packet.kind == PacketKind::kResponse) {
    on_response(msg);
    return;
  }
  auto it = handlers_.find(msg.packet.type);
  Responder responder;
  if (msg.packet.kind == PacketKind::kRequest) {
    // `fired` makes double replies harmless, per the Responder contract.
    auto fired = std::make_shared<bool>(false);
    const Endpoint from = msg.from;
    const std::uint64_t seq = msg.packet.seq;
    const MsgType type = msg.packet.type;
    responder = Responder([this, fired, from, seq, type](std::uint8_t code,
                                                         const Bytes& body) {
      if (*fired) return;
      *fired = true;
      Packet reply;
      reply.kind = PacketKind::kResponse;
      reply.type = type;
      reply.seq = seq;
      Writer w(1 + body.size());
      w.u8(code);
      w.raw(body);
      reply.payload = w.take();
      Status s = transport_.send(self_, from, std::move(reply));
      if (!s.ok()) {
        EW_DEBUG << "reply to " << from.to_string() << " failed: " << s.to_string();
      }
    });
  }
  if (it == handlers_.end()) {
    responder.fail(Err::kRejected, "no handler for type " + std::to_string(msg.packet.type));
    return;
  }
  it->second(msg, responder);
}

void Node::on_response(const IncomingMessage& msg) {
  auto it = pending_.find(msg.packet.seq);
  if (it == pending_.end()) {
    // Late response after the timer fired: the time-out misjudged a live
    // server ("needless retries and dynamic reconfigurations", §2.2).
    ++g_stats.late_responses;
    return;
  }
  // Unwrap the status byte.
  Reader r(msg.packet.payload);
  auto code = r.u8();
  if (!code) {
    finish(msg.packet.seq, Error{Err::kProtocol, "response missing status byte"},
           /*success=*/false);
    return;
  }
  if (*code == 0) {
    auto body = r.raw(r.remaining());
    finish(msg.packet.seq, std::move(*body), /*success=*/true);
  } else {
    auto message = r.str();
    Error e{static_cast<Err>(*code), message ? *message : std::string{}};
    // A server-level rejection is still a *successful* round trip for the
    // purposes of response-time forecasting.
    finish(msg.packet.seq, std::move(e), /*success=*/true);
  }
}

void Node::finish(std::uint64_t seq, Result<Bytes> result, bool success) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  pending_.erase(it);
  exec_.cancel(p.timer);
  if (observer_) {
    observer_(p.to, p.type, exec_.now() - p.sent, success);
  }
  if (p.cb) p.cb(std::move(result));
}

}  // namespace ew
