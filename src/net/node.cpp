#include "net/node.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "common/serialize.hpp"
#include "obs/trace.hpp"

namespace ew {

namespace {
// Orphaned-seq memory: enough to cover every plausible in-flight duplicate,
// small enough that a degenerate run cannot bloat the node.
constexpr std::size_t kCancelledSeqCap = 4096;

// Spans join against forecast streams through the same dynamic-benchmarking
// event tag the timeout discovery uses. Called only when tracing is on, so
// the tag string is built (and interned) only then.
std::uint32_t call_trace_tag(const EventTag& tag) {
  return obs::trace().intern(tag.to_string());
}
}  // namespace

void Responder::fail(Err code, const std::string& message) const {
  Writer w;
  w.str(message);
  emit(err_to_wire(code), w.take());
}

void Responder::emit(std::uint8_t code, const Bytes& payload) const {
  if (send_) send_(code, payload);
}

Node::Node(Executor& exec, Transport& transport, Endpoint self)
    : exec_(exec), transport_(transport), self_(std::move(self)) {}

Node::~Node() { stop(); }

Status Node::start() {
  if (started_) return Status(Err::kRejected, "node already started");
  Status s = transport_.bind(self_, [this](IncomingMessage msg) {
    on_packet(std::move(msg));
  });
  started_ = s.ok();
  return s;
}

void Node::stop() {
  if (!started_) return;
  transport_.unbind(self_);
  started_ = false;
  // Abandon outstanding calls WITHOUT invoking their callbacks: stop() is
  // routinely called during teardown, after the objects owning those
  // callbacks are gone. Components that need completion guarantees keep
  // their own liveness flags.
  for (auto& [seq, a] : pending_) exec_.cancel(a.timer);
  for (auto& [id, c] : calls_) {
    exec_.cancel(c.deadline_timer);
    exec_.cancel(c.retry_timer);
    exec_.cancel(c.hedge_timer);
  }
  pending_.clear();
  calls_.clear();
  late_.clear();
  cancelled_.clear();
  cancelled_order_.clear();
}

void Node::crash() {
  if (!started_) return;
  transport_.unbind(self_);
  started_ = false;
  fail_outstanding(Err::kPeerDown);
}

void Node::fail_outstanding(Err code) {
  // complete_call erases from calls_ (and may enqueue follow-up work via
  // the callbacks); snapshot the ids and walk them in a deterministic
  // order so chaos replays are bit-identical.
  std::vector<std::uint64_t> ids;
  ids.reserve(calls_.size());
  for (const auto& [id, c] : calls_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    complete_call(id, Error{code, "process crashed"});
  }
}

void Node::handle(MsgType type, ServerHandler handler) {
  handlers_[type] = std::move(handler);
}

void Node::call(const Endpoint& to, MsgType type, Bytes payload,
                CallOptions opts, CallCallback cb) {
  const std::uint64_t id = next_call_id_++;
  const TimePoint now = exec_.now();
  policy_.stats().record_call_start();

  CallState c;
  c.cb = std::move(cb);
  c.to = to;
  c.type = type;
  c.tag = EventTag::of(to, type);
  c.opts = std::move(opts);
  c.started = now;
  // The payload is copied only when a second attempt is possible; the
  // common single-attempt call moves it straight into the packet.
  const bool may_resend =
      c.opts.retry.max_attempts > 1 || c.opts.hedge.enabled;
  if (may_resend) c.payload = payload;
  if (c.opts.deadline > 0) {
    c.deadline_at = now + c.opts.deadline;
    c.deadline_timer = exec_.schedule(c.opts.deadline, [this, id] {
      complete_call(id, Error{Err::kTimeout, "call deadline exceeded"});
    });
  }
  calls_.emplace(id, std::move(c));

  start_attempt(id, std::move(payload), /*is_hedge=*/false);
  // The first attempt may already have completed the call (synchronous send
  // failure with no retry budget); maybe_schedule_hedge no-ops then.
  maybe_schedule_hedge(id);
}

Status Node::send_oneway(const Endpoint& to, MsgType type, Bytes payload) {
  Packet pkt;
  pkt.kind = PacketKind::kOneWay;
  pkt.type = type;
  pkt.seq = 0;
  pkt.payload = std::move(payload);
  return transport_.send(self_, to, std::move(pkt));
}

void Node::start_attempt(std::uint64_t call_id, Bytes payload, bool is_hedge) {
  auto cit = calls_.find(call_id);
  if (cit == calls_.end()) return;
  CallState& c = cit->second;
  const TimePoint now = exec_.now();

  // The breaker may have opened since the call was admitted (or since the
  // last attempt); shed rather than hammer a host known to be down. A shed
  // hedge/duplicate must not abort the call while an earlier attempt is
  // still in flight — that attempt may be the breaker's half-open probe,
  // and killing the call here would drop its response on the floor and
  // leak the probe slot (latching the breaker half-open forever).
  if (!policy_.admit(c.to, now)) {
    policy_.stats().record_short_circuit();
    if (c.in_flight == 0) {
      complete_call(call_id,
                    Error{Err::kUnavailable, "circuit open to " + c.to.to_string()});
    }
    return;
  }

  Duration timeout = policy_.attempt_timeout(c.tag, c.opts);
  if (c.deadline_at > 0) {
    if (c.deadline_at <= now) {
      complete_call(call_id, Error{Err::kTimeout, "call deadline exceeded"});
      return;
    }
    timeout = std::min(timeout, c.deadline_at - now);
  }

  const std::uint64_t seq = next_seq_++;
  if (is_hedge) {
    c.hedge_sent = true;
  } else {
    ++c.attempts_started;
    if (c.attempts_started == 1) c.first_attempt_timeout = timeout;
  }
  ++c.in_flight;
  c.seqs.push_back(seq);
  policy_.stats().record_attempt(!is_hedge && c.attempts_started > 1, is_hedge);
  if (obs::trace().enabled()) {
    obs::trace().record(now, obs::SpanKind::kCallAttempt, call_trace_tag(c.tag),
                        c.attempts_started, is_hedge ? 1 : 0);
  }

  Attempt a;
  a.call_id = call_id;
  a.sent = now;
  a.timeout = timeout;
  a.is_hedge = is_hedge;
  a.timer = exec_.schedule(timeout, [this, seq] { on_attempt_timeout(seq); });
  pending_.emplace(seq, a);

  Packet pkt;
  pkt.kind = PacketKind::kRequest;
  pkt.type = c.type;
  pkt.seq = seq;
  pkt.payload = std::move(payload);
  Status s = transport_.send(self_, c.to, std::move(pkt));
  if (!s.ok()) {
    // Synchronous refusal: the attempt never left this host.
    auto pit = pending_.find(seq);
    exec_.cancel(pit->second.timer);
    pending_.erase(pit);
    --c.in_flight;
    // Backpressure (kOverloaded) is a verdict on OUR outbox, not on the
    // server: feeding it to the breaker/forecaster would open circuits and
    // shrink time-outs for a peer that did nothing wrong. Other synchronous
    // failures are genuine destination trouble and are recorded.
    if (s.code() != Err::kOverloaded) {
      policy_.on_attempt_result(c.tag, c.to, now, /*sent=*/now, 0,
                                /*ok=*/false);
      if (observer_) observer_(c.to, c.type, 0, /*success=*/false);
    }
    on_attempt_failed(call_id, s.error());
  }
}

void Node::maybe_schedule_hedge(std::uint64_t call_id) {
  auto cit = calls_.find(call_id);
  if (cit == calls_.end()) return;
  CallState& c = cit->second;
  if (!c.opts.hedge.enabled) return;
  const Duration delay = policy_.hedge_delay(c.tag, c.opts.hedge);
  // No RTT history, or the tail quantile is so close to the time-out that a
  // retry would fire anyway: don't pay for a duplicate.
  if (delay <= 0 || delay >= c.first_attempt_timeout) return;
  if (obs::trace().enabled()) {
    obs::trace().record(exec_.now(), obs::SpanKind::kCallHedge,
                        call_trace_tag(c.tag), delay);
  }
  c.hedge_timer = exec_.schedule(delay, [this, call_id] {
    auto it = calls_.find(call_id);
    if (it == calls_.end()) return;
    CallState& call = it->second;
    call.hedge_timer = kInvalidTimer;
    // Hedge only while the first attempt is still out there; if it already
    // failed we are in retry territory, which has its own schedule.
    if (call.hedge_sent || call.in_flight < 1) return;
    start_attempt(call_id, call.payload, /*is_hedge=*/true);
  });
}

void Node::on_attempt_timeout(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  const Attempt a = it->second;
  pending_.erase(it);
  auto cit = calls_.find(a.call_id);
  if (cit == calls_.end()) return;
  CallState& c = cit->second;
  --c.in_flight;
  policy_.stats().record_timeout(a.timeout);
  policy_.on_attempt_result(c.tag, c.to, exec_.now(), a.sent, a.timeout,
                            /*ok=*/false);
  if (observer_) observer_(c.to, c.type, a.timeout, /*success=*/false);
  // The server may still answer; if the call is then still undecided, that
  // late response completes it (see on_response).
  late_.emplace(seq, LateAttempt{a.call_id, a.sent});
  on_attempt_failed(a.call_id, Error{Err::kTimeout, "request timed out"});
}

void Node::on_attempt_failed(std::uint64_t call_id, Error err) {
  auto cit = calls_.find(call_id);
  if (cit == calls_.end()) return;
  CallState& c = cit->second;
  // A sibling attempt (the hedge or the primary) is still in flight; let it
  // run — it may yet win.
  if (c.in_flight > 0) return;
  if (err_retryable(err.code) && schedule_retry(call_id)) return;
  if (!c.opts.trace_tag.empty()) {
    EW_DEBUG << "call '" << c.opts.trace_tag << "' to " << c.to.to_string()
             << " failed after " << c.attempts_started
             << " attempt(s): " << err.to_string();
  }
  complete_call(call_id, std::move(err));
}

bool Node::schedule_retry(std::uint64_t call_id) {
  auto cit = calls_.find(call_id);
  if (cit == calls_.end()) return false;
  CallState& c = cit->second;
  if (c.attempts_started >= c.opts.retry.max_attempts) return false;
  const TimePoint now = exec_.now();
  const Duration backoff = c.opts.retry.backoff(c.attempts_started, call_id);
  // A retry that cannot start before the deadline is pointless; fail now
  // with the attempt's error instead of burning the remaining budget.
  if (c.deadline_at > 0 && now + backoff >= c.deadline_at) return false;
  if (obs::trace().enabled()) {
    obs::trace().record(now, obs::SpanKind::kCallRetry, call_trace_tag(c.tag),
                        c.attempts_started + 1, backoff);
  }
  c.retry_timer = exec_.schedule(backoff, [this, call_id] {
    auto it = calls_.find(call_id);
    if (it == calls_.end()) return;
    it->second.retry_timer = kInvalidTimer;
    if (it->second.in_flight > 0) return;  // a late response revived the race
    start_attempt(call_id, it->second.payload, /*is_hedge=*/false);
  });
  return true;
}

void Node::on_packet(IncomingMessage msg) {
  if (msg.packet.kind == PacketKind::kResponse) {
    on_response(msg);
    return;
  }
  auto it = handlers_.find(msg.packet.type);
  Responder responder;
  if (msg.packet.kind == PacketKind::kRequest) {
    // `fired` makes double replies harmless, per the Responder contract.
    auto fired = std::make_shared<bool>(false);
    const Endpoint from = msg.from;
    const std::uint64_t seq = msg.packet.seq;
    const MsgType type = msg.packet.type;
    responder = Responder([this, fired, from, seq, type](std::uint8_t code,
                                                         const Bytes& body) {
      if (*fired) return;
      *fired = true;
      Packet reply;
      reply.kind = PacketKind::kResponse;
      reply.type = type;
      reply.seq = seq;
      Writer w(1 + body.size());
      w.u8(code);
      w.raw(body);
      reply.payload = w.take();
      Status s = transport_.send(self_, from, std::move(reply));
      if (!s.ok()) {
        EW_DEBUG << "reply to " << from.to_string() << " failed: " << s.to_string();
      }
    });
  }
  if (it == handlers_.end()) {
    responder.fail(Err::kRejected, "no handler for type " + std::to_string(msg.packet.type));
    return;
  }
  it->second(msg, responder);
}

void Node::on_response(const IncomingMessage& msg) {
  const std::uint64_t seq = msg.packet.seq;
  const TimePoint now = exec_.now();

  if (auto it = pending_.find(seq); it != pending_.end()) {
    const Attempt a = it->second;
    exec_.cancel(a.timer);
    pending_.erase(it);
    auto cit = calls_.find(a.call_id);
    if (cit == calls_.end()) return;
    CallState& c = cit->second;
    --c.in_flight;
    const Duration rtt = now - a.sent;
    policy_.on_attempt_result(c.tag, c.to, now, a.sent, rtt, /*ok=*/true);
    if (observer_) observer_(c.to, c.type, rtt, /*success=*/true);
    if (c.hedge_sent) policy_.stats().record_hedge_result(a.is_hedge);
    deliver_response(a.call_id, msg);
    return;
  }

  if (auto lt = late_.find(seq); lt != late_.end()) {
    const LateAttempt la = lt->second;
    late_.erase(lt);
    // The attempt's timer fired but the server was alive — the exact
    // misjudgment the paper blames static time-outs for ("needless retries
    // and dynamic reconfigurations", Section 2.2). The call is still
    // undecided (late_ entries die with their call), so the response
    // completes it rather than going to waste.
    auto cit = calls_.find(la.call_id);
    if (cit == calls_.end()) return;
    CallState& c = cit->second;
    policy_.stats().record_late_response(/*rescued=*/true);
    policy_.on_attempt_result(c.tag, c.to, now, la.sent, now - la.sent,
                              /*ok=*/true);
    deliver_response(la.call_id, msg);
    return;
  }

  if (cancelled_.erase(seq) > 0) {
    // A hedge loser or superseded retry answering after its call already
    // completed: expected duplicate, dropped — never a second delivery.
    policy_.stats().record_duplicate_response();
    return;
  }

  // Response for a call that already finished (by error or abandoned at
  // stop): the classic spurious time-out with nothing left to rescue.
  policy_.stats().record_late_response(/*rescued=*/false);
}

void Node::deliver_response(std::uint64_t call_id, const IncomingMessage& msg) {
  auto cit = calls_.find(call_id);
  if (cit == calls_.end()) return;
  CallState& c = cit->second;

  // Unwrap the status byte.
  Reader r(msg.packet.payload);
  auto code = r.u8();
  if (!code) {
    complete_call(call_id, Error{Err::kProtocol, "response missing status byte"});
    return;
  }
  if (*code == 0) {
    auto body = r.raw(r.remaining());
    complete_call(call_id, std::move(*body));
    return;
  }
  auto message = r.str();
  Error e{err_from_wire(*code), message ? *message : std::string{}};
  // An application-level verdict rode a working round trip; resending the
  // same request usually repeats the answer, so only callers that opted in
  // (retry_rejected) burn retry budget on it.
  if (c.opts.retry.retry_rejected && c.in_flight == 0 &&
      schedule_retry(call_id)) {
    return;
  }
  complete_call(call_id, std::move(e));
}

void Node::complete_call(std::uint64_t call_id, Result<Bytes> result) {
  auto cit = calls_.find(call_id);
  if (cit == calls_.end()) return;
  CallState c = std::move(cit->second);
  calls_.erase(cit);
  exec_.cancel(c.deadline_timer);
  exec_.cancel(c.retry_timer);
  exec_.cancel(c.hedge_timer);
  for (std::uint64_t seq : c.seqs) {
    if (auto it = pending_.find(seq); it != pending_.end()) {
      // Still-in-flight loser (the cancelled hedge or superseded attempt);
      // its eventual response is an expected duplicate. Its outcome will
      // never reach the policy, so hand back any half-open probe slot the
      // attempt may hold — otherwise the breaker stays latched half-open.
      exec_.cancel(it->second.timer);
      pending_.erase(it);
      remember_cancelled(seq);
      policy_.on_attempt_abandoned(c.to);
    }
    // Dead late_ entries: a response now is just a plain late response.
    late_.erase(seq);
  }
  policy_.stats().record_call_end(result.ok(), exec_.now() - c.started);
  if (c.cb) c.cb(std::move(result));
}

void Node::remember_cancelled(std::uint64_t seq) {
  if (cancelled_.insert(seq).second) {
    cancelled_order_.push_back(seq);
    if (cancelled_order_.size() > kCancelledSeqCap) {
      cancelled_.erase(cancelled_order_.front());
      cancelled_order_.pop_front();
    }
  }
}

}  // namespace ew
