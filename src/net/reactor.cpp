#include "net/reactor.hpp"

#include <sys/select.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/log.hpp"

namespace ew {

ReactorBackend Reactor::default_backend() {
#ifdef __linux__
  if (const char* env = std::getenv("EW_REACTOR_BACKEND")) {
    if (std::strcmp(env, "select") == 0) return ReactorBackend::kSelect;
  }
  return ReactorBackend::kEpoll;
#else
  return ReactorBackend::kSelect;
#endif
}

Reactor::Reactor(ReactorBackend backend) : backend_(backend) {
#ifndef __linux__
  backend_ = ReactorBackend::kSelect;  // epoll is Linux-only
#endif
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error("Reactor: pipe() failed");
  }
  wake_read_ = Fd(pipefd[0]);
  wake_write_ = Fd(pipefd[1]);
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
#ifdef __linux__
  if (backend_ == ReactorBackend::kEpoll) {
    epoll_fd_ = Fd(::epoll_create1(0));
    if (!epoll_fd_.valid()) {
      throw std::runtime_error("Reactor: epoll_create1() failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_.get();
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_read_.get(), &ev) != 0) {
      throw std::runtime_error("Reactor: epoll_ctl(wake pipe) failed");
    }
  }
#endif
}

Reactor::~Reactor() = default;

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint8_t byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

TimerId Reactor::schedule(Duration delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  const TimePoint deadline = clock_.now() + std::max<Duration>(delay, 0);
  timers_.emplace(std::make_pair(deadline, id), std::move(fn));
  timer_deadline_.emplace(id, deadline);
  return id;
}

void Reactor::cancel(TimerId id) {
  auto it = timer_deadline_.find(id);
  if (it == timer_deadline_.end()) return;
  timers_.erase(std::make_pair(it->second, id));
  timer_deadline_.erase(it);
}

void Reactor::add_watcher(std::unordered_map<int, Watcher>& map, int fd,
                          std::function<void()> cb) {
  Watcher& w = map[fd];
  w.cb = std::make_shared<std::function<void()>>(std::move(cb));
  // A fresh generation per registration: readiness observed for a previous
  // tenant of this fd number can no longer reach the new callback.
  w.gen = next_watch_gen_++;
}

void Reactor::watch_readable(int fd, std::function<void()> on_readable) {
  add_watcher(read_watchers_, fd, std::move(on_readable));
  update_epoll_interest(fd);
}

void Reactor::watch_writable(int fd, std::function<void()> on_writable) {
  add_watcher(write_watchers_, fd, std::move(on_writable));
  update_epoll_interest(fd);
}

void Reactor::unwatch_readable(int fd) {
  read_watchers_.erase(fd);
  update_epoll_interest(fd);
}

void Reactor::unwatch_writable(int fd) {
  write_watchers_.erase(fd);
  update_epoll_interest(fd);
}

void Reactor::update_epoll_interest(int fd) {
#ifdef __linux__
  if (backend_ != ReactorBackend::kEpoll) return;
  std::uint32_t want = 0;
  if (read_watchers_.contains(fd)) want |= EPOLLIN;
  if (write_watchers_.contains(fd)) want |= EPOLLOUT;
  auto it = epoll_interest_.find(fd);
  const std::uint32_t have = it == epoll_interest_.end() ? 0 : it->second;
  if (want == have) return;

  epoll_event ev{};
  ev.events = want;
  ev.data.fd = fd;
  if (want == 0) {
    // The fd may already be closed (close() drops epoll membership); DEL
    // failing with ENOENT/EBADF is then the expected outcome.
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    epoll_interest_.erase(fd);
    return;
  }
  int op = have == 0 ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
  if (::epoll_ctl(epoll_fd_.get(), op, fd, &ev) != 0) {
    // Stale bookkeeping (fd closed and reused behind our back): retry with
    // the complementary op before giving up.
    op = op == EPOLL_CTL_ADD ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (::epoll_ctl(epoll_fd_.get(), op, fd, &ev) != 0) {
      EW_ERROR << "Reactor: epoll_ctl failed for fd " << fd << ": "
               << std::strerror(errno);
      epoll_interest_.erase(fd);
      return;
    }
  }
  epoll_interest_[fd] = want;
#else
  (void)fd;
#endif
}

void Reactor::run() { loop_until(0, /*use_deadline=*/false); }

void Reactor::run_for(Duration d) { loop_until(clock_.now() + d, /*use_deadline=*/true); }

void Reactor::stop() {
  post([this] { stop_requested_ = true; });
}

TimePoint Reactor::drain_ready() {
  // Posted work first.
  for (;;) {
    std::deque<std::function<void()>> batch;
    {
      std::lock_guard lock(post_mutex_);
      batch.swap(posted_);
    }
    if (batch.empty()) break;
    for (auto& fn : batch) fn();
  }
  // Due timers.
  const TimePoint now = clock_.now();
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto node = timers_.extract(timers_.begin());
    timer_deadline_.erase(node.key().second);
    node.mapped()();
  }
  return timers_.empty() ? -1 : timers_.begin()->first.first;
}

void Reactor::drain_wake_pipe() {
  std::uint8_t buf[64];
  while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
  }
}

bool Reactor::poll_select(Duration wait, std::vector<Ready>& out) {
  fd_set rfds;
  fd_set wfds;
  FD_ZERO(&rfds);
  FD_ZERO(&wfds);
  int maxfd = wake_read_.get();
  FD_SET(wake_read_.get(), &rfds);
  for (const auto& [fd, w] : read_watchers_) {
    if (fd >= FD_SETSIZE) {
      // FD_SET past FD_SETSIZE is an out-of-bounds write, not a soft limit.
      EW_ERROR << "Reactor[select]: fd " << fd
               << " >= FD_SETSIZE, not watchable (use the epoll backend)";
      continue;
    }
    FD_SET(fd, &rfds);
    maxfd = std::max(maxfd, fd);
  }
  for (const auto& [fd, w] : write_watchers_) {
    if (fd >= FD_SETSIZE) {
      EW_ERROR << "Reactor[select]: fd " << fd
               << " >= FD_SETSIZE, not watchable (use the epoll backend)";
      continue;
    }
    FD_SET(fd, &wfds);
    maxfd = std::max(maxfd, fd);
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(wait / kSecond);
  tv.tv_usec = static_cast<suseconds_t>(wait % kSecond);
  const int sel = ::select(maxfd + 1, &rfds, &wfds, nullptr, &tv);
  if (sel < 0) {
    if (errno == EINTR) return true;
    EW_ERROR << "Reactor: select failed, stopping";
    return false;
  }
  if (FD_ISSET(wake_read_.get(), &rfds)) drain_wake_pipe();
  for (const auto& [fd, w] : read_watchers_) {
    if (fd < FD_SETSIZE && FD_ISSET(fd, &rfds)) {
      out.push_back(Ready{fd, w.gen, /*writable=*/false});
    }
  }
  for (const auto& [fd, w] : write_watchers_) {
    if (fd < FD_SETSIZE && FD_ISSET(fd, &wfds)) {
      out.push_back(Ready{fd, w.gen, /*writable=*/true});
    }
  }
  return true;
}

bool Reactor::poll_epoll(Duration wait, std::vector<Ready>& out) {
#ifdef __linux__
  // Whole-millisecond timeout, rounded up so a 0<wait<1ms timer does not
  // turn the loop into a busy spin.
  int timeout_ms = static_cast<int>((wait + kMillisecond - 1) / kMillisecond);
  epoll_event events[256];
  const int n = ::epoll_wait(epoll_fd_.get(), events,
                             static_cast<int>(std::size(events)), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return true;
    EW_ERROR << "Reactor: epoll_wait failed, stopping";
    return false;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    const std::uint32_t ev = events[i].events;
    if (fd == wake_read_.get()) {
      drain_wake_pipe();
      continue;
    }
    // EPOLLERR/EPOLLHUP surface through whichever watchers exist so the
    // owner discovers the error via recv()/getsockopt(SO_ERROR) — the same
    // behaviour select() gives (failed connects select writable).
    if (ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
      if (auto it = read_watchers_.find(fd); it != read_watchers_.end()) {
        out.push_back(Ready{fd, it->second.gen, /*writable=*/false});
      }
    }
    if (ev & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
      if (auto it = write_watchers_.find(fd); it != write_watchers_.end()) {
        out.push_back(Ready{fd, it->second.gen, /*writable=*/true});
      }
    }
  }
  return true;
#else
  (void)wait;
  (void)out;
  return false;
#endif
}

void Reactor::loop_until(TimePoint deadline, bool use_deadline) {
  stop_requested_ = false;
  while (!stop_requested_) {
    const TimePoint next_timer = drain_ready();
    if (stop_requested_) break;
    const TimePoint now = clock_.now();
    if (use_deadline && now >= deadline) break;

    // Poll timeout: until the next timer / loop deadline, capped.
    Duration wait = 50 * kMillisecond;
    if (next_timer >= 0) wait = std::min(wait, std::max<Duration>(next_timer - now, 0));
    if (use_deadline) wait = std::min(wait, std::max<Duration>(deadline - now, 0));

    ready_.clear();
    const bool ok = backend_ == ReactorBackend::kEpoll ? poll_epoll(wait, ready_)
                                                       : poll_select(wait, ready_);
    if (!ok) break;

    // Invoke with re-validation: a callback may close fds, unwatch siblings,
    // or accept a connection that reuses a just-closed fd number. Each ready
    // fact is only honoured if the same registration (fd AND generation) is
    // still present at invoke time.
    for (const Ready& r : ready_) {
      const auto& map = r.writable ? write_watchers_ : read_watchers_;
      auto it = map.find(r.fd);
      if (it == map.end() || it->second.gen != r.gen) continue;  // stale
      // Hold the callable across the invoke: it may unwatch (erase) itself.
      const std::shared_ptr<std::function<void()>> cb = it->second.cb;
      (*cb)();
    }
  }
}

}  // namespace ew
