#include "net/reactor.hpp"

#include <sys/select.h>
#include <unistd.h>

#include <algorithm>
#include <vector>

#include "common/log.hpp"

namespace ew {

Reactor::Reactor() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::runtime_error("Reactor: pipe() failed");
  }
  wake_read_ = Fd(pipefd[0]);
  wake_write_ = Fd(pipefd[1]);
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);
}

Reactor::~Reactor() = default;

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint8_t byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

TimerId Reactor::schedule(Duration delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  const TimePoint deadline = clock_.now() + std::max<Duration>(delay, 0);
  timers_.emplace(std::make_pair(deadline, id), std::move(fn));
  timer_deadline_.emplace(id, deadline);
  return id;
}

void Reactor::cancel(TimerId id) {
  auto it = timer_deadline_.find(id);
  if (it == timer_deadline_.end()) return;
  timers_.erase(std::make_pair(it->second, id));
  timer_deadline_.erase(it);
}

void Reactor::watch_readable(int fd, std::function<void()> on_readable) {
  read_watchers_[fd] = std::move(on_readable);
}

void Reactor::watch_writable(int fd, std::function<void()> on_writable) {
  write_watchers_[fd] = std::move(on_writable);
}

void Reactor::unwatch_readable(int fd) { read_watchers_.erase(fd); }
void Reactor::unwatch_writable(int fd) { write_watchers_.erase(fd); }

void Reactor::run() { loop_until(0, /*use_deadline=*/false); }

void Reactor::run_for(Duration d) { loop_until(clock_.now() + d, /*use_deadline=*/true); }

void Reactor::stop() {
  post([this] { stop_requested_ = true; });
}

TimePoint Reactor::drain_ready() {
  // Posted work first.
  for (;;) {
    std::deque<std::function<void()>> batch;
    {
      std::lock_guard lock(post_mutex_);
      batch.swap(posted_);
    }
    if (batch.empty()) break;
    for (auto& fn : batch) fn();
  }
  // Due timers.
  const TimePoint now = clock_.now();
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto node = timers_.extract(timers_.begin());
    timer_deadline_.erase(node.key().second);
    node.mapped()();
  }
  return timers_.empty() ? -1 : timers_.begin()->first.first;
}

void Reactor::loop_until(TimePoint deadline, bool use_deadline) {
  stop_requested_ = false;
  while (!stop_requested_) {
    const TimePoint next_timer = drain_ready();
    if (stop_requested_) break;
    const TimePoint now = clock_.now();
    if (use_deadline && now >= deadline) break;

    // Select timeout: until the next timer / loop deadline, capped.
    Duration wait = 50 * kMillisecond;
    if (next_timer >= 0) wait = std::min(wait, std::max<Duration>(next_timer - now, 0));
    if (use_deadline) wait = std::min(wait, std::max<Duration>(deadline - now, 0));

    fd_set rfds;
    fd_set wfds;
    FD_ZERO(&rfds);
    FD_ZERO(&wfds);
    int maxfd = wake_read_.get();
    FD_SET(wake_read_.get(), &rfds);
    for (const auto& [fd, cb] : read_watchers_) {
      FD_SET(fd, &rfds);
      maxfd = std::max(maxfd, fd);
    }
    for (const auto& [fd, cb] : write_watchers_) {
      FD_SET(fd, &wfds);
      maxfd = std::max(maxfd, fd);
    }
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(wait / kSecond);
    tv.tv_usec = static_cast<suseconds_t>(wait % kSecond);
    const int sel = ::select(maxfd + 1, &rfds, &wfds, nullptr, &tv);
    if (sel < 0) {
      if (errno == EINTR) continue;
      EW_ERROR << "Reactor: select failed, stopping";
      break;
    }
    if (FD_ISSET(wake_read_.get(), &rfds)) {
      std::uint8_t buf[64];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
    }
    // Collect ready callbacks before invoking: a callback may mutate the
    // watcher maps (closing connections), which would invalidate iteration.
    std::vector<std::function<void()>> ready;
    for (const auto& [fd, cb] : read_watchers_) {
      if (FD_ISSET(fd, &rfds)) ready.push_back(cb);
    }
    for (const auto& [fd, cb] : write_watchers_) {
      if (FD_ISSET(fd, &wfds)) ready.push_back(cb);
    }
    for (auto& cb : ready) cb();
  }
}

}  // namespace ew
