// TcpTransport: the lingua franca over real TCP sockets.
//
// Each frame on the wire is a standard EveryWare packet whose payload is
// prefixed with (source endpoint, destination endpoint) routing — this lets
// any number of components share one process and, crucially, lets replies
// reuse the connection a request arrived on (components are not always
// re-connectable across the federated environments of Section 5).
//
// All methods must be called on the owning Reactor's thread. Connections are
// created lazily on first send, cached per peer endpoint, and torn down on
// any socket error; reliability above that is the job of the time-out /
// retry machinery in Node and the forecasting layer.
#pragma once

#include <unordered_map>

#include "net/reactor.hpp"
#include "net/transport.hpp"

namespace ew {

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(Reactor& reactor) : reactor_(reactor) {}
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status bind(const Endpoint& self, PacketHandler handler) override;
  void unbind(const Endpoint& self) override;
  Status send(const Endpoint& from, const Endpoint& to, Packet packet) override;

  /// Blocking connect budget for lazily created connections (default 2 s).
  void set_connect_timeout(Duration d) { connect_timeout_ = d; }

  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }

 private:
  struct Conn {
    Fd fd;
    FrameParser parser;
    Bytes outbox;
    std::size_t outbox_pos = 0;
    Endpoint peer;  // last known routable address of the other side
    bool writable_watched = false;
  };
  struct Listener {
    Fd fd;
    PacketHandler handler;
  };

  Status flush(int fd);
  void close_conn(int fd);
  void on_conn_readable(int fd);
  void on_listener_readable(int listener_fd);
  void dispatch_frames(int fd);
  int ensure_connection(const Endpoint& to, Status& status);

  Reactor& reactor_;
  Duration connect_timeout_ = 2 * kSecond;
  std::unordered_map<Endpoint, Listener, EndpointHash> listeners_;
  std::unordered_map<int, Conn> conns_;                       // keyed by fd
  std::unordered_map<Endpoint, int, EndpointHash> peer_conn_;  // peer -> fd
};

}  // namespace ew
