// TcpTransport: the lingua franca over real TCP sockets.
//
// Each frame on the wire is a standard EveryWare packet whose payload is
// prefixed with (source endpoint, destination endpoint) routing — this lets
// any number of components share one process and, crucially, lets replies
// reuse the connection a request arrived on (components are not always
// re-connectable across the federated environments of Section 5).
//
// All methods must be called on the owning Reactor's thread. Connections are
// created lazily on first send and cached per peer endpoint. Dialling is
// asynchronous: send() starts a non-blocking connect, queues the frame, and
// returns — a dead or black-holed peer never stalls the event loop; the
// connect verdict arrives through a writable watcher (or the connect timer)
// and a failed dial simply tears the connection down, dropping its queued
// frames. Reliability above that is the job of the time-out / retry
// machinery in Node and the forecasting layer.
//
// Backpressure is explicit: each connection's outbox is bounded
// (set_max_outbox_bytes), and a send that would overflow it fails
// synchronously with Err::kOverloaded (counted in net.backpressure_rejects)
// instead of buffering without limit against a slow or stalled peer.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"

namespace ew {

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(Reactor& reactor);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status bind(const Endpoint& self, PacketHandler handler) override;
  void unbind(const Endpoint& self) override;
  Status send(const Endpoint& from, const Endpoint& to, Packet packet) override;

  /// Budget for an asynchronous dial to complete (default 2 s). The dial
  /// itself never blocks the reactor; this bounds how long queued frames
  /// wait on an unresponsive peer before the connection is abandoned.
  void set_connect_timeout(Duration d) { connect_timeout_ = d; }

  /// Per-connection outbox ceiling in bytes (default 64 MiB, which admits a
  /// few maximum-size frames). Sends that would exceed it fail with
  /// Err::kOverloaded.
  void set_max_outbox_bytes(std::size_t n) { max_outbox_bytes_ = n; }

  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }
  /// Bytes queued across every connection's outbox (backpressure signal).
  [[nodiscard]] std::size_t queued_bytes() const { return total_outbox_bytes_; }

 private:
  struct Conn {
    std::uint64_t id = 0;  // unique per Conn; guards against fd-number reuse
    Fd fd;
    FrameParser parser;
    Bytes outbox;
    std::size_t outbox_pos = 0;
    Endpoint peer;  // last known routable address of the other side
    bool writable_watched = false;
    bool connecting = false;             // dial started, verdict pending
    TimerId connect_timer = kInvalidTimer;
  };
  struct Listener {
    Fd fd;
    PacketHandler handler;
  };

  Status flush(int fd);
  void close_conn(int fd);
  void on_conn_readable(int fd);
  void on_conn_writable(int fd);
  void on_listener_readable(int listener_fd);
  void dispatch_frames(int fd);
  int ensure_connection(const Endpoint& to, Status& status);
  /// Adjust the shared outbox accounting (and its gauge) by +/- delta. The
  /// gauges aggregate by delta so several transports in one process (each
  /// component pool has its own) sum instead of clobbering each other.
  void account_outbox(std::ptrdiff_t delta);

  Reactor& reactor_;
  Duration connect_timeout_ = 2 * kSecond;
  std::size_t max_outbox_bytes_ = 64 * 1024 * 1024;
  std::size_t total_outbox_bytes_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<Endpoint, Listener, EndpointHash> listeners_;
  std::unordered_map<int, Conn> conns_;                       // keyed by fd
  std::unordered_map<Endpoint, int, EndpointHash> peer_conn_;  // peer -> fd
  obs::Counter* backpressure_rejects_;
  obs::Counter* frames_truncated_;
  obs::Gauge* conns_open_;
  obs::Gauge* outbox_bytes_;
};

}  // namespace ew
