// TcpTransport: the lingua franca over real TCP sockets.
//
// Each frame on the wire is a standard EveryWare packet whose payload is
// prefixed with (source endpoint, destination endpoint) routing — this lets
// any number of components share one process and, crucially, lets replies
// reuse the connection a request arrived on (components are not always
// re-connectable across the federated environments of Section 5).
//
// All methods must be called on the owning Reactor's thread; one process may
// run many transports on many reactor shards (net/shard_pool.hpp), each
// strictly confined to its own shard. Connections are created lazily on
// first send and cached per peer endpoint. Dialling is asynchronous: send()
// starts a non-blocking connect, queues the frame, and returns — a dead or
// black-holed peer never stalls the event loop; the connect verdict arrives
// through a writable watcher (or the connect timer) and a failed dial simply
// tears the connection down, dropping its queued frames. Reliability above
// that is the job of the time-out / retry machinery in Node and the
// forecasting layer.
//
// The wire path is built to touch bytes once per direction:
//   * send — encode_routed_frame() writes header + routing + payload into
//     one exact-size buffer; frames queue in a per-connection ring of owned
//     buffers and leave via scatter-gather sendmsg (several frames per
//     syscall, no prefix-compaction memmove, no coalescing copy);
//   * receive — recv(2) lands directly in the FrameParser's reassembly
//     buffer (FrameParser::recv_buffer) and frames are dispatched as
//     zero-copy views; the payload is copied out only once a bound local
//     endpoint actually takes delivery.
//
// Backpressure is explicit: each connection's outbox is bounded
// (set_max_outbox_bytes), and a send that would overflow it fails
// synchronously with Err::kOverloaded (counted in net.backpressure_rejects)
// instead of buffering without limit against a slow or stalled peer.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"

namespace ew {

/// Single-allocation encode of a routed wire frame: packet header +
/// (src, dst) routing prefix + payload, written in place with the checksum
/// patched in after the bytes it covers. This is the transport's send-path
/// encoder; exposed so benches and tests can pin its cost and wire shape.
Bytes encode_routed_frame(const Packet& p, const Endpoint& src,
                          const Endpoint& dst);

class TcpTransport final : public Transport {
 public:
  /// `metrics_label` tags this transport's net.* instruments — per-shard
  /// deployments pass "shard=K" so each shard's gauges/counters are visible
  /// individually. The unlabelled process-wide instruments are always
  /// updated too (by atomic delta, so shards sum instead of clobbering).
  explicit TcpTransport(Reactor& reactor, std::string_view metrics_label = {});
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status bind(const Endpoint& self, PacketHandler handler) override;
  void unbind(const Endpoint& self) override;
  Status send(const Endpoint& from, const Endpoint& to, Packet packet) override;

  /// Bind listeners with SO_REUSEPORT so several transports (one per
  /// reactor shard) can share one port and let the kernel spread inbound
  /// connections across them. Affects subsequent bind() calls.
  void set_reuse_port(bool on) { reuse_port_ = on; }

  /// Budget for an asynchronous dial to complete (default 2 s). The dial
  /// itself never blocks the reactor; this bounds how long queued frames
  /// wait on an unresponsive peer before the connection is abandoned.
  void set_connect_timeout(Duration d) { connect_timeout_ = d; }

  /// Per-connection outbox ceiling in bytes (default 64 MiB, which admits a
  /// few maximum-size frames). Sends that would exceed it fail with
  /// Err::kOverloaded.
  void set_max_outbox_bytes(std::size_t n) { max_outbox_bytes_ = n; }

  [[nodiscard]] std::size_t open_connections() const { return conns_.size(); }
  /// Bytes queued across every connection's outbox (backpressure signal).
  [[nodiscard]] std::size_t queued_bytes() const { return total_outbox_bytes_; }

 private:
  struct Conn {
    std::uint64_t id = 0;  // unique per Conn; guards against fd-number reuse
    Fd fd;
    FrameParser parser;
    /// Outbox ring: whole encoded frames, oldest first. Flushed by
    /// scatter-gather sendmsg; `outbox_head` is how much of the front frame
    /// already left. Fully-sent frames pop — no compaction memmove, ever.
    std::deque<Bytes> outbox;
    std::size_t outbox_head = 0;
    std::size_t outbox_bytes = 0;  // unsent bytes across the ring
    Endpoint peer;  // last known routable address of the other side
    bool writable_watched = false;
    bool connecting = false;             // dial started, verdict pending
    TimerId connect_timer = kInvalidTimer;
  };
  struct Listener {
    Fd fd;
    PacketHandler handler;
  };

  Status flush(int fd);
  void close_conn(int fd);
  void on_conn_readable(int fd);
  void on_conn_writable(int fd);
  void on_listener_readable(int listener_fd);
  void dispatch_frames(int fd);
  int ensure_connection(const Endpoint& to, Status& status);
  /// Adjust the shared outbox accounting (and its gauges) by +/- delta. The
  /// gauges aggregate by delta so several transports in one process — on
  /// one shard or across shards — sum instead of clobbering each other
  /// (Gauge::add is a CAS loop, safe under concurrent shard threads).
  void account_outbox(std::ptrdiff_t delta);
  void account_conns(double delta);

  Reactor& reactor_;
  Duration connect_timeout_ = 2 * kSecond;
  std::size_t max_outbox_bytes_ = 64 * 1024 * 1024;
  std::size_t total_outbox_bytes_ = 0;
  std::uint64_t next_conn_id_ = 1;
  bool reuse_port_ = false;
  std::unordered_map<Endpoint, Listener, EndpointHash> listeners_;
  std::unordered_map<int, Conn> conns_;                       // keyed by fd
  std::unordered_map<Endpoint, int, EndpointHash> peer_conn_;  // peer -> fd
  obs::Counter* backpressure_rejects_;
  obs::Counter* frames_truncated_;
  obs::Gauge* conns_open_;
  obs::Gauge* outbox_bytes_;
  // Per-shard labelled twins (null when no metrics label was given).
  obs::Counter* backpressure_rejects_shard_ = nullptr;
  obs::Counter* frames_truncated_shard_ = nullptr;
  obs::Gauge* conns_open_shard_ = nullptr;
  obs::Gauge* outbox_bytes_shard_ = nullptr;
};

}  // namespace ew
