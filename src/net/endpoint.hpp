// Network endpoints.
//
// An Endpoint names a contact address for an EveryWare component — the same
// (host, port) pair the paper's components register with the Gossip service.
// In simulation the "host" is a symbolic host name; over real TCP it is an
// IPv4 address or DNS name.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ew {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
  [[nodiscard]] bool valid() const { return !host.empty() && port != 0; }

  friend bool operator==(const Endpoint& a, const Endpoint& b) = default;
  friend auto operator<=>(const Endpoint& a, const Endpoint& b) = default;
};

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const {
    return std::hash<std::string>{}(e.host) * 1000003u ^ e.port;
  }
};

}  // namespace ew
