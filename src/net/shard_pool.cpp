#include "net/shard_pool.hpp"

#include <condition_variable>
#include <mutex>

namespace ew {

ReactorShardPool::ReactorShardPool(std::size_t n)
    : ReactorShardPool(n, Reactor::default_backend()) {}

ReactorShardPool::ReactorShardPool(std::size_t n, ReactorBackend backend) {
  if (n == 0) n = 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Reactor>(backend));
  }
}

ReactorShardPool::~ReactorShardPool() { stop(); }

void ReactorShardPool::start() {
  if (running()) return;
  threads_.reserve(shards_.size());
  thread_ids_.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    threads_.emplace_back([this, i] {
      thread_ids_[i] = std::this_thread::get_id();
      shards_[i]->run();
    });
  }
  // Wait until every shard has recorded its thread id, so run_on()'s
  // same-thread check is reliable from the moment start() returns.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    shards_[i]->post([&] {
      std::lock_guard<std::mutex> lk(m);
      entered = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return entered; });
  }
}

void ReactorShardPool::stop() {
  if (!running()) return;
  for (auto& shard : shards_) shard->stop();
  for (auto& t : threads_) t.join();
  threads_.clear();
  thread_ids_.clear();
}

void ReactorShardPool::run_on(std::size_t shard, const std::function<void()>& fn) {
  if (!running() || std::this_thread::get_id() == thread_ids_[shard]) {
    fn();
    return;
  }
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  shards_[shard]->post([&] {
    fn();
    std::lock_guard<std::mutex> lk(m);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return done; });
}

}  // namespace ew
