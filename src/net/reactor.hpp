// Reactor: the real-time Executor.
//
// A single-threaded select() loop with a timer heap — the shape of every
// EveryWare server process in the paper (single-threaded, select()-driven,
// no signals; Section 5.1). The TcpTransport registers its sockets here.
// post() is thread-safe via a self-pipe so examples can feed work from other
// threads; everything else must run on the reactor thread.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>

#include "common/clock.hpp"
#include "net/executor.hpp"
#include "net/tcp.hpp"

namespace ew {

class Reactor final : public Executor {
 public:
  Reactor();
  ~Reactor() override;
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  [[nodiscard]] const Clock& clock() const override { return clock_; }
  void post(std::function<void()> fn) override;
  TimerId schedule(Duration delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  /// Watch a socket; `on_readable` runs on the reactor thread whenever the
  /// fd becomes readable. One watcher per fd.
  void watch_readable(int fd, std::function<void()> on_readable);
  /// Watch for writability (used to flush blocked outboxes). One per fd.
  void watch_writable(int fd, std::function<void()> on_writable);
  void unwatch_readable(int fd);
  void unwatch_writable(int fd);

  /// Process events until stop() is called.
  void run();
  /// Process events for (approximately) the given real-time duration.
  void run_for(Duration d);
  /// Make run()/run_for() return as soon as possible. Thread-safe.
  void stop();

 private:
  void loop_until(TimePoint deadline, bool use_deadline);
  /// Run posted fns and due timers; returns the next timer deadline (or -1).
  TimePoint drain_ready();

  RealClock clock_;
  Fd wake_read_;
  Fd wake_write_;
  std::mutex post_mutex_;
  std::deque<std::function<void()>> posted_;
  // Timers: ordered by (deadline, id) for stable firing order.
  std::map<std::pair<TimePoint, TimerId>, std::function<void()>> timers_;
  std::unordered_map<TimerId, TimePoint> timer_deadline_;
  TimerId next_timer_ = 1;
  std::unordered_map<int, std::function<void()>> read_watchers_;
  std::unordered_map<int, std::function<void()>> write_watchers_;
  bool stop_requested_ = false;
};

}  // namespace ew
