// Reactor: the real-time Executor.
//
// A single-threaded readiness loop with a timer heap — the shape of every
// EveryWare server process in the paper (single-threaded, select()-driven,
// no signals; Section 5.1). The TcpTransport registers its sockets here.
// post() is thread-safe via a self-pipe so examples can feed work from other
// threads; everything else must run on the reactor thread.
//
// Two readiness backends sit behind the same watch/unwatch API:
//   * kSelect — the paper-faithful portable loop. On Linux FD_SETSIZE is a
//     hard 1024-fd ceiling (FD_SET past it is an out-of-bounds write), so
//     fds beyond it are refused with a log line rather than corrupting the
//     stack.
//   * kEpoll  — epoll(7), Linux only, no fd ceiling; the backend the c10k
//     soak and every >1024-connection deployment uses. Level-triggered, so
//     watcher semantics are identical to select.
// The default is epoll where available; EW_REACTOR_BACKEND=select|epoll
// overrides it at process level (useful to run the whole suite over the
// portable backend).
//
// Dispatch is fd-lifetime safe in both backends: ready callbacks are
// re-validated against the watcher map (fd + registration generation)
// immediately before each invoke, so a callback that closes a connection —
// or accepts a new one reusing the same fd number — cannot cause a queued
// callback to fire against a dead or reused fd.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "net/executor.hpp"
#include "net/tcp.hpp"

namespace ew {

enum class ReactorBackend {
  kSelect,  // portable select() loop, FD_SETSIZE-bounded
  kEpoll,   // epoll(7); Linux only
};

class Reactor final : public Executor {
 public:
  /// Backend the default constructor picks: kEpoll on Linux unless the
  /// EW_REACTOR_BACKEND environment variable says otherwise; kSelect
  /// elsewhere (and when the variable asks for it).
  static ReactorBackend default_backend();

  Reactor() : Reactor(default_backend()) {}
  explicit Reactor(ReactorBackend backend);
  ~Reactor() override;
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  [[nodiscard]] ReactorBackend backend() const { return backend_; }

  [[nodiscard]] const Clock& clock() const override { return clock_; }
  void post(std::function<void()> fn) override;
  TimerId schedule(Duration delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  /// Watch a socket; `on_readable` runs on the reactor thread whenever the
  /// fd becomes readable. One watcher per fd.
  void watch_readable(int fd, std::function<void()> on_readable);
  /// Watch for writability (used to flush blocked outboxes and to harvest
  /// asynchronous connect results). One per fd.
  void watch_writable(int fd, std::function<void()> on_writable);
  void unwatch_readable(int fd);
  void unwatch_writable(int fd);

  /// Process events until stop() is called.
  void run();
  /// Process events for (approximately) the given real-time duration.
  void run_for(Duration d);
  /// Make run()/run_for() return as soon as possible. Thread-safe.
  void stop();

 private:
  /// A registered callback plus the generation it was registered under.
  /// The shared_ptr lets dispatch hold the callable alive across an invoke
  /// that unwatches (and thus erases) its own map entry.
  struct Watcher {
    std::shared_ptr<std::function<void()>> cb;
    std::uint64_t gen = 0;
  };
  /// One readiness fact from the backend, pinned to the registration it was
  /// observed for. Validated against the live map right before invoking.
  struct Ready {
    int fd = -1;
    std::uint64_t gen = 0;
    bool writable = false;
  };

  void loop_until(TimePoint deadline, bool use_deadline);
  /// Run posted fns and due timers; returns the next timer deadline (or -1).
  TimePoint drain_ready();
  /// Backend poll: block up to `wait`, append readiness facts to `out`.
  /// Returns false on an unrecoverable poll error (loop should stop).
  bool poll_select(Duration wait, std::vector<Ready>& out);
  bool poll_epoll(Duration wait, std::vector<Ready>& out);
  void drain_wake_pipe();
  /// (epoll) reconcile the kernel interest set for `fd` with the watcher
  /// maps after a watch/unwatch.
  void update_epoll_interest(int fd);
  void add_watcher(std::unordered_map<int, Watcher>& map, int fd,
                   std::function<void()> cb);

  RealClock clock_;
  ReactorBackend backend_;
  Fd wake_read_;
  Fd wake_write_;
  Fd epoll_fd_;  // valid only under kEpoll
  std::mutex post_mutex_;
  std::deque<std::function<void()>> posted_;
  // Timers: ordered by (deadline, id) for stable firing order.
  std::map<std::pair<TimePoint, TimerId>, std::function<void()>> timers_;
  std::unordered_map<TimerId, TimePoint> timer_deadline_;
  TimerId next_timer_ = 1;
  std::uint64_t next_watch_gen_ = 1;
  std::unordered_map<int, Watcher> read_watchers_;
  std::unordered_map<int, Watcher> write_watchers_;
  std::unordered_map<int, std::uint32_t> epoll_interest_;  // fd -> EPOLL* mask
  std::vector<Ready> ready_;  // reused across iterations
  bool stop_requested_ = false;
};

}  // namespace ew
