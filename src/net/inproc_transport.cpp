#include "net/inproc_transport.hpp"

#include <utility>

namespace ew {

Status InProcTransport::bind(const Endpoint& self, PacketHandler handler) {
  if (!self.valid()) return Status(Err::kRejected, "invalid endpoint");
  auto [it, inserted] = bindings_.emplace(self, std::move(handler));
  (void)it;
  if (!inserted) return Status(Err::kRejected, "endpoint already bound: " + self.to_string());
  return {};
}

void InProcTransport::unbind(const Endpoint& self) { bindings_.erase(self); }

Status InProcTransport::send(const Endpoint& from, const Endpoint& to, Packet packet) {
  if (drop_ && drop_(from, to, packet)) {
    ++packets_dropped_;
    return {};  // silent loss: the sender cannot tell
  }
  auto it = bindings_.find(to);
  if (it == bindings_.end()) {
    return Status(Err::kRefused, "no listener at " + to.to_string());
  }
  ++packets_sent_;
  // Deliver on a later executor turn; re-resolve the binding at delivery
  // time so packets racing an unbind are dropped like the real thing.
  auto deliver = [this, from, to, pkt = std::move(packet)]() mutable {
    auto target = bindings_.find(to);
    if (target == bindings_.end()) return;
    target->second(IncomingMessage{from, std::move(pkt)});
  };
  if (latency_ > 0) {
    exec_.schedule(latency_, std::move(deliver));
  } else {
    exec_.post(std::move(deliver));
  }
  return {};
}

}  // namespace ew
