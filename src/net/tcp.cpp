#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ew {

namespace {

std::string errno_str() { return std::strerror(errno); }

Result<in_addr_t> resolve(const std::string& host) {
  if (host == "localhost") return htonl(INADDR_LOOPBACK);
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) == 1) return addr.s_addr;
  return Error{Err::kRefused, "unresolvable host (numeric IPv4 only): " + host};
}

timeval to_timeval(Duration d) {
  if (d < 0) d = 0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(d / kSecond);
  tv.tv_usec = static_cast<suseconds_t>(d % kSecond);
  return tv;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status(Err::kInternal, "fcntl: " + errno_str());
  }
  return {};
}

Result<Fd> tcp_listen(std::uint16_t port, int backlog, bool reuse_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Error{Err::kInternal, "socket: " + errno_str()};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      return Error{Err::kInternal, "setsockopt(SO_REUSEPORT): " + errno_str()};
    }
#else
    return Error{Err::kInternal, "SO_REUSEPORT not supported on this platform"};
#endif
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Error{Err::kRefused, "bind port " + std::to_string(port) + ": " + errno_str()};
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Error{Err::kInternal, "listen: " + errno_str()};
  }
  if (Status s = set_nonblocking(fd); !s.ok()) return s.error();
  return fd;
}

Result<std::uint16_t> local_port(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Error{Err::kInternal, "getsockname: " + errno_str()};
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Result<PendingConnect> tcp_connect_start(const Endpoint& to) {
  auto ip = resolve(to.host);
  if (!ip) return ip.error();

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Error{Err::kInternal, "socket: " + errno_str()};
  if (Status s = set_nonblocking(fd); !s.ok()) return s.error();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = *ip;
  addr.sin_port = htons(to.port);

  const int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {  // immediate success (loopback)
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return PendingConnect{std::move(fd), /*completed=*/true};
  }
  if (errno != EINPROGRESS) {
    return Error{Err::kRefused, "connect " + to.to_string() + ": " + errno_str()};
  }
  return PendingConnect{std::move(fd), /*completed=*/false};
}

Status tcp_finish_connect(const Fd& fd, const Endpoint& to) {
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 || soerr != 0) {
    return Status(Err::kRefused,
                  "connect " + to.to_string() + ": " + std::strerror(soerr ? soerr : errno));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return {};
}

Result<Fd> tcp_connect(const Endpoint& to, Duration timeout) {
  auto started = tcp_connect_start(to);
  if (!started) return started.error();
  if (started->completed) return std::move(started->fd);

  fd_set wfds;
  FD_ZERO(&wfds);
  FD_SET(started->fd.get(), &wfds);
  timeval tv = to_timeval(timeout);
  const int sel = ::select(started->fd.get() + 1, nullptr, &wfds, nullptr, &tv);
  if (sel == 0) return Error{Err::kTimeout, "connect " + to.to_string() + " timed out"};
  if (sel < 0) return Error{Err::kInternal, "select: " + errno_str()};

  if (Status s = tcp_finish_connect(started->fd, to); !s.ok()) return s.error();
  return std::move(started->fd);
}

Result<Fd> tcp_accept(const Fd& listener) {
  Fd fd(::accept(listener.get(), nullptr, nullptr));
  if (!fd.valid()) {
    if (errno == EWOULDBLOCK || errno == EAGAIN) {
      return Error{Err::kUnavailable, "no pending connection"};
    }
    return Error{Err::kInternal, "accept: " + errno_str()};
  }
  if (Status s = set_nonblocking(fd); !s.ok()) return s.error();
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::size_t> send_some(const Fd& fd, std::span<const std::uint8_t> data) {
  if (data.empty()) return std::size_t{0};
  const ssize_t n = ::send(fd.get(), data.data(), data.size(), MSG_NOSIGNAL);
  if (n >= 0) return static_cast<std::size_t>(n);
  if (errno == EWOULDBLOCK || errno == EAGAIN) return std::size_t{0};
  return Error{Err::kClosed, "send: " + errno_str()};
}

Result<std::size_t> send_some(const Fd& fd,
                              std::span<const std::span<const std::uint8_t>> segments) {
  if (segments.empty()) return std::size_t{0};
  // IOV_MAX is at least 16 everywhere; 64 frames per syscall is already far
  // past the knee of the batching curve for our frame sizes.
  constexpr std::size_t kMaxIov = 64;
  iovec iov[kMaxIov];
  std::size_t n = 0;
  for (const auto& seg : segments) {
    if (seg.empty()) continue;
    iov[n].iov_base = const_cast<std::uint8_t*>(seg.data());
    iov[n].iov_len = seg.size();
    if (++n == kMaxIov) break;
  }
  if (n == 0) return std::size_t{0};
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = n;
  const ssize_t sent = ::sendmsg(fd.get(), &msg, MSG_NOSIGNAL);
  if (sent >= 0) return static_cast<std::size_t>(sent);
  if (errno == EWOULDBLOCK || errno == EAGAIN) return std::size_t{0};
  return Error{Err::kClosed, "sendmsg: " + errno_str()};
}

Result<std::size_t> recv_some(const Fd& fd, Bytes& out) {
  std::uint8_t buf[16384];
  const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
  if (n > 0) {
    out.insert(out.end(), buf, buf + n);
    return static_cast<std::size_t>(n);
  }
  if (n == 0) return Error{Err::kClosed, "peer closed"};
  if (errno == EWOULDBLOCK || errno == EAGAIN) return std::size_t{0};
  return Error{Err::kClosed, "recv: " + errno_str()};
}

Result<std::size_t> recv_into(const Fd& fd, std::span<std::uint8_t> out) {
  if (out.empty()) return std::size_t{0};
  const ssize_t n = ::recv(fd.get(), out.data(), out.size(), 0);
  if (n > 0) return static_cast<std::size_t>(n);
  if (n == 0) return Error{Err::kClosed, "peer closed"};
  if (errno == EWOULDBLOCK || errno == EAGAIN) return std::size_t{0};
  return Error{Err::kClosed, "recv: " + errno_str()};
}

Result<bool> wait_readable(const Fd& fd, Duration timeout) {
  fd_set rfds;
  FD_ZERO(&rfds);
  FD_SET(fd.get(), &rfds);
  timeval tv = to_timeval(timeout);
  const int sel = ::select(fd.get() + 1, &rfds, nullptr, nullptr, &tv);
  if (sel < 0) return Error{Err::kInternal, "select: " + errno_str()};
  return sel > 0;
}

}  // namespace ew
