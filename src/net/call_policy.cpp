#include "net/call_policy.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace ew {

namespace {

// splitmix64 finalizer: cheap, well-mixed, and deterministic — simulator
// runs replay bit-exactly while concurrent callers still decorrelate.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Duration RetryPolicy::backoff(std::uint32_t prior_attempts,
                              std::uint64_t seed) const {
  // prior_attempts >= 1 when we are pricing a retry; exponent 0 for the
  // first retry keeps base_backoff the fastest resend.
  const std::uint32_t exponent = prior_attempts > 0 ? prior_attempts - 1 : 0;
  double backoff = static_cast<double>(base_backoff);
  for (std::uint32_t i = 0; i < exponent; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= static_cast<double>(max_backoff)) break;
  }
  backoff = std::min(backoff, static_cast<double>(max_backoff));
  if (jitter > 0) {
    const std::uint64_t h = mix64(seed * 0x100000001b3ULL + prior_attempts);
    // Unit sample in [0,1) from the top 53 bits.
    const double unit =
        static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    // Spread over [1 - jitter, 1]: jitter only shortens the wait, so the
    // un-jittered value remains the worst case for deadline budgeting.
    backoff *= 1.0 - jitter * unit;
  }
  return std::max<Duration>(static_cast<Duration>(backoff), 1);
}

bool CircuitBreaker::allow(TimePoint now) {
  roll(now);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probes_in_flight_ < opts_.half_open_probes) {
        ++probes_in_flight_;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::on_result(TimePoint now, TimePoint sent, bool ok) {
  roll(now);
  // Evidence from before the last trip has already been priced in: those
  // attempts were in flight when the breaker opened, and their failures are
  // the very reason it opened. Only attempts sent since then say anything
  // about the destination's *current* health.
  const bool current = sent >= evidence_floor_;
  if (state_ == State::kHalfOpen && current && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
  if (ok) {
    consecutive_failures_ = 0;
    // One successful probe is proof enough: the paper's servers flap with
    // ambient load, so a long confirmation window would just delay reuse.
    // A stale success still counts — proof of life is valid whenever sent.
    if (state_ == State::kHalfOpen) state_ = State::kClosed;
    return;
  }
  if (!current) return;
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= opts_.failure_threshold) {
    trip(now);
  }
}

void CircuitBreaker::roll(TimePoint now) {
  if (state_ == State::kOpen && now >= open_until_) {
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
  }
}

void CircuitBreaker::trip(TimePoint now) {
  state_ = State::kOpen;
  open_until_ = now + opts_.open_for;
  evidence_floor_ = now;
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  ++times_opened_;
}

CircuitBreaker& CircuitBreakerBank::at(const Endpoint& to) {
  return by_dest_.try_emplace(to.to_string(), opts_).first->second;
}

AggregateCallStats::AggregateCallStats()
    : owned_(std::make_unique<obs::Registry>()) {
  bind(*owned_);
}

AggregateCallStats::AggregateCallStats(obs::Registry& reg) { bind(reg); }

void AggregateCallStats::bind(obs::Registry& reg) {
  namespace n = obs::names;
  reg_ = &reg;
  calls_started_ = &reg.counter(n::kNetCallsStarted);
  calls_ok_ = &reg.counter(n::kNetCallsOk);
  calls_failed_ = &reg.counter(n::kNetCallsFailed);
  attempts_ = &reg.counter(n::kNetAttempts);
  retries_ = &reg.counter(n::kNetRetries);
  hedges_ = &reg.counter(n::kNetHedges);
  hedge_wins_ = &reg.counter(n::kNetHedgeWins);
  hedge_losses_ = &reg.counter(n::kNetHedgeLosses);
  timeouts_fired_ = &reg.counter(n::kNetTimeoutsFired);
  late_responses_ = &reg.counter(n::kNetLateResponses);
  late_rescues_ = &reg.counter(n::kNetLateRescues);
  duplicate_responses_ = &reg.counter(n::kNetDuplicateResponses);
  short_circuits_ = &reg.counter(n::kNetShortCircuits);
  breaker_opened_ = &reg.counter(n::kNetBreakerOpened);
  call_latency_us_ = &reg.histogram(n::kNetCallLatencyUs);
  timeout_wait_us_ = &reg.histogram(n::kNetTimeoutWaitUs);
}

void AggregateCallStats::record_breaker_transition(int /*from*/, int to) {
  if (to == static_cast<int>(CircuitBreaker::State::kOpen)) {
    breaker_opened_->inc();
  }
}

void AggregateCallStats::reset() {
  calls_started_->reset();
  calls_ok_->reset();
  calls_failed_->reset();
  attempts_->reset();
  retries_->reset();
  hedges_->reset();
  hedge_wins_->reset();
  hedge_losses_->reset();
  timeouts_fired_->reset();
  late_responses_->reset();
  late_rescues_->reset();
  duplicate_responses_->reset();
  short_circuits_->reset();
  breaker_opened_->reset();
  call_latency_us_->reset();
  timeout_wait_us_->reset();
}

AggregateCallStats& process_call_stats() {
  static AggregateCallStats* stats =
      new AggregateCallStats(obs::registry());
  return *stats;
}

CallStatsSink& CallPolicy::stats() const {
  return sink_ != nullptr ? *sink_ : process_call_stats();
}

Duration CallPolicy::attempt_timeout(const EventTag& tag,
                                     const CallOptions& opts) const {
  // An explicit global override (ablation arms) beats even fixed per-call
  // values, mirroring the old components' uniform use of AdaptiveTimeout.
  const Duration global = AdaptiveTimeout::global_static_override();
  if (global > 0) return global;
  if (opts.attempt_timeout > 0) return opts.attempt_timeout;
  Duration t = timeouts_.timeout(tag);
  if (opts.initial_timeout > 0 && !timeouts_.bank().knows(tag)) {
    t = opts.initial_timeout;
  }
  if (opts.max_attempt_timeout > 0) t = std::min(t, opts.max_attempt_timeout);
  return t;
}

Duration CallPolicy::hedge_delay(const EventTag& tag,
                                 const HedgePolicy& hedge) const {
  if (!hedge.enabled) return 0;
  const Duration q = timeouts_.observed_quantile(tag, hedge.tail_quantile);
  if (q <= 0) return 0;  // no history: the forecast has nothing to say
  return std::max(q, hedge.min_delay);
}

namespace {

// Surface a breaker edge to the stats sink and, when tracing, the span
// ring. The address is interned only on an actual transition, so the
// steady-state path never allocates.
void note_breaker_edge(CallStatsSink& sink, const Endpoint& to, TimePoint now,
                       CircuitBreaker::State before,
                       CircuitBreaker::State after) {
  if (before == after) return;
  sink.record_breaker_transition(static_cast<int>(before),
                                 static_cast<int>(after));
  auto& tr = obs::trace();
  if (tr.enabled()) {
    tr.record(now, obs::SpanKind::kBreakerTransition, tr.intern(to.to_string()),
              static_cast<int>(before), static_cast<int>(after));
  }
}

}  // namespace

bool CallPolicy::admit(const Endpoint& to, TimePoint now) {
  if (!opts_.breaker_enabled) return true;
  CircuitBreaker& b = breakers_.at(to);
  const CircuitBreaker::State before = b.peek_state();
  const bool ok = b.allow(now);  // may roll open -> half-open
  note_breaker_edge(stats(), to, now, before, b.peek_state());
  return ok;
}

void CallPolicy::on_attempt_abandoned(const Endpoint& to) {
  if (opts_.breaker_enabled) breakers_.at(to).release_probe();
}

void CallPolicy::on_attempt_result(const EventTag& tag, const Endpoint& to,
                                   TimePoint now, TimePoint sent, Duration rtt,
                                   bool ok) {
  timeouts_.on_result(tag, rtt, ok);
  if (opts_.breaker_enabled) {
    CircuitBreaker& b = breakers_.at(to);
    const CircuitBreaker::State before = b.peek_state();
    b.on_result(now, sent, ok);  // rolls, then applies the outcome
    note_breaker_edge(stats(), to, now, before, b.peek_state());
  }
}

}  // namespace ew
