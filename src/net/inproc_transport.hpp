// In-process transport: deterministic same-process packet delivery.
//
// Used by unit tests and the quickstart example. Delivery is asynchronous
// (posted through the Executor) so protocol code sees the same re-entrancy
// it would over real sockets. Fault hooks let tests inject drops, fixed
// latency and unreachable endpoints; the full network model (fluctuating
// latency, partitions driven by traces) lives in sim/network_model.hpp.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/executor.hpp"
#include "net/transport.hpp"

namespace ew {

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(Executor& exec) : exec_(exec) {}

  Status bind(const Endpoint& self, PacketHandler handler) override;
  void unbind(const Endpoint& self) override;
  Status send(const Endpoint& from, const Endpoint& to, Packet packet) override;

  /// Fixed one-way delivery latency (default 0: next executor turn).
  void set_latency(Duration d) { latency_ = d; }

  /// Drop predicate: return true to silently discard a packet.
  using DropFn = std::function<bool(const Endpoint& from, const Endpoint& to,
                                    const Packet&)>;
  void set_drop_fn(DropFn fn) { drop_ = std::move(fn); }

  [[nodiscard]] std::size_t bound_count() const { return bindings_.size(); }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return packets_dropped_; }

 private:
  Executor& exec_;
  std::unordered_map<Endpoint, PacketHandler, EndpointHash> bindings_;
  Duration latency_ = 0;
  DropFn drop_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

}  // namespace ew
