// ReactorShardPool: N independent single-threaded reactors, one OS thread
// each — multi-core scaling without giving up the paper's single-threaded
// server shape (Section 5.1).
//
// The sharding contract:
//   * Every reactor, and everything built on it (TcpTransport, Node,
//     handlers), is owned by exactly one shard and touched only from that
//     shard's thread. There is no cross-shard locking because there is no
//     cross-shard sharing — shards communicate the same way distinct
//     processes do, over the transport.
//   * Inbound load is spread kernel-side: each shard's transport binds the
//     same port with SO_REUSEPORT (TcpTransport::set_reuse_port), and the
//     kernel hashes incoming connections across the listeners. No accept
//     lock, no hand-off.
//   * Cross-thread entry points are exactly two: Reactor::post (self-pipe)
//     and run_on() below. Observability is shared — the obs registry's
//     instruments are atomic, and the net.* gauges aggregate by delta — so
//     shards update common metrics without coordination.
//
// The deterministic simulator and chaos replay stay single-shard by
// construction: determinism comes from one event queue with one logical
// clock, which is precisely what a shard is. Sharding multiplies that unit;
// it never threads the inside of one.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/reactor.hpp"

namespace ew {

class ReactorShardPool {
 public:
  /// Create `n` reactors (n >= 1, clamped) using the default backend, or an
  /// explicit one. Reactors exist immediately; threads start with start().
  explicit ReactorShardPool(std::size_t n);
  ReactorShardPool(std::size_t n, ReactorBackend backend);
  ~ReactorShardPool();
  ReactorShardPool(const ReactorShardPool&) = delete;
  ReactorShardPool& operator=(const ReactorShardPool&) = delete;

  [[nodiscard]] std::size_t size() const { return shards_.size(); }
  /// The shard's reactor. Before start() the caller may use it directly
  /// (e.g. to construct transports/nodes that will live on that shard);
  /// after start() it must only be reached via post()/run_on().
  [[nodiscard]] Reactor& reactor(std::size_t shard) { return *shards_[shard]; }

  /// Launch one thread per shard, each running its reactor until stop().
  void start();
  /// Stop every reactor and join the threads. Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return !threads_.empty(); }

  /// Run `fn` on the shard's thread and wait for it to finish. If the pool
  /// is not running, or the caller *is* that shard's thread, `fn` runs
  /// inline — so setup/teardown code works identically before start() and
  /// after, and a shard may run_on itself without deadlocking.
  void run_on(std::size_t shard, const std::function<void()>& fn);

  /// Fire-and-forget cross-thread post to a shard (thread-safe).
  void post(std::size_t shard, std::function<void()> fn) {
    shards_[shard]->post(std::move(fn));
  }

 private:
  std::vector<std::unique_ptr<Reactor>> shards_;
  std::vector<std::thread> threads_;
  std::vector<std::thread::id> thread_ids_;
};

}  // namespace ew
