// Reliable call layer: policy between Node::call and the forecasting stack.
//
// The paper's dynamic time-out discovery (Section 2.2) tells a caller how
// long to wait — this layer decides what to do when the wait runs out. It
// turns the forecast stream into three actuated policies:
//
//   * retries — exponential backoff with deterministic jitter, budgeted
//     against an overall per-call deadline, taken only on retryable
//     transport failures (a server that *answered* with a rejection is not
//     retried unless the caller opts in);
//   * hedging — when the first attempt outlives the observed RTT tail
//     quantile for its (server, message type) event tag, it is probably
//     lost, and one duplicate attempt is fired; the loser is cancelled and
//     wins/losses are counted;
//   * circuit breaking — per-destination failure counting fed by the same
//     timeout/error stream the forecaster sees; a tripped breaker sheds
//     calls immediately (kUnavailable) and probes half-open for recovery.
//
// CallPolicy bundles the three with the AdaptiveTimeout that prices each
// attempt, plus an injectable CallStatsSink replacing the old process-wide
// Node::GlobalStats.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "forecast/timeout.hpp"
#include "net/endpoint.hpp"
#include "obs/registry.hpp"

namespace ew {

/// True for failures where the request may never have reached (or returned
/// from) the server, so a resend is safe-by-idempotence-assumption and
/// useful. Application-level verdicts (kRejected, kProtocol, kInternal)
/// travelled a working round trip; resending the same bytes would only
/// repeat the answer.
[[nodiscard]] inline bool err_retryable(Err e) {
  switch (e) {
    case Err::kTimeout:
    case Err::kClosed:
    case Err::kRefused:
    case Err::kUnavailable:
    case Err::kPeerDown:
    case Err::kOverloaded:  // local outbox full; backoff then resend
      return true;
    default:
      return false;
  }
}

/// Retry schedule for one call. Defaults to a single attempt — the caller
/// must opt in to resends, because Node cannot know which requests are
/// idempotent.
struct RetryPolicy {
  std::uint32_t max_attempts = 1;       // total attempts, including the first
  Duration base_backoff = 100 * kMillisecond;
  double backoff_multiplier = 2.0;
  Duration max_backoff = 5 * kSecond;
  double jitter = 0.5;                  // fraction of the backoff randomised
  /// Also retry application-level rejections (servers that answered with a
  /// failure status). Off by default: see err_retryable.
  bool retry_rejected = false;

  /// Backoff before attempt `prior_attempts + 1`. Jitter is deterministic,
  /// hashed from `seed` (the call id) and the attempt index, so simulator
  /// runs replay exactly while concurrent callers still decorrelate.
  [[nodiscard]] Duration backoff(std::uint32_t prior_attempts,
                                 std::uint64_t seed) const;

  static RetryPolicy standard(std::uint32_t attempts = 3) {
    RetryPolicy p;
    p.max_attempts = attempts;
    return p;
  }
};

/// Hedged-request policy for one call. Off by default; when enabled, at most
/// one duplicate attempt is fired once the first outlives the observed
/// `tail_quantile` of past RTTs for its event tag. With no RTT history the
/// forecast has nothing to say and no hedge fires.
struct HedgePolicy {
  bool enabled = false;
  double tail_quantile = 0.95;
  /// Floor under the forecast delay so a noisy, microsecond-level tail
  /// cannot make every call a double call.
  Duration min_delay = 10 * kMillisecond;

  static HedgePolicy at(double quantile) {
    HedgePolicy h;
    h.enabled = true;
    h.tail_quantile = quantile;
    return h;
  }
};

/// Per-call knobs for Node::call. Default-constructed options reproduce the
/// old single-attempt behaviour with a forecast-driven time-out.
struct CallOptions {
  /// Overall budget across all attempts and backoffs; 0 = no deadline
  /// (each attempt still has its own time-out).
  Duration deadline = 0;
  /// Fixed per-attempt time-out; 0 = dynamic discovery via AdaptiveTimeout.
  Duration attempt_timeout = 0;
  /// With dynamic discovery: time-out to use before the tag has any
  /// samples (0 = the policy-wide AdaptiveTimeout initial).
  Duration initial_timeout = 0;
  /// With dynamic discovery: cap on the discovered time-out (0 = the
  /// policy-wide ceiling).
  Duration max_attempt_timeout = 0;
  RetryPolicy retry{};
  HedgePolicy hedge{};
  /// Optional label carried into failure logs.
  std::string trace_tag{};

  /// The old positional-Duration call, spelled out: one attempt with a
  /// fixed time-out.
  static CallOptions fixed(Duration attempt_timeout) {
    CallOptions o;
    o.attempt_timeout = attempt_timeout;
    return o;
  }
};

/// Observer for everything the call layer does. Replaces the process-wide
/// Node::GlobalStats static: a Node reports to whichever sink its CallPolicy
/// holds, and the default sink is the process-wide aggregate so existing
/// benches keep their counters.
class CallStatsSink {
 public:
  virtual ~CallStatsSink() = default;
  virtual void record_call_start() {}
  /// ok=false covers timeouts, transport failures, rejections, shed calls.
  virtual void record_call_end(bool /*ok*/, Duration /*latency*/) {}
  /// One network attempt issued. `retry` marks attempts after the first;
  /// `hedge` marks forecast-triggered duplicates.
  virtual void record_attempt(bool /*retry*/, bool /*hedge*/) {}
  /// An attempt timer fired after waiting `timeout`.
  virtual void record_timeout(Duration /*timeout*/) {}
  /// A response arrived for an attempt that had already timed out. `rescued`
  /// means the call was still live and the response completed it.
  virtual void record_late_response(bool /*rescued*/) {}
  /// A response for an attempt cancelled by retry/hedge completion arrived
  /// after its call finished; it was dropped, not delivered twice.
  virtual void record_duplicate_response() {}
  /// A hedged call completed; `hedge_won` tells whether the duplicate beat
  /// the original.
  virtual void record_hedge_result(bool /*hedge_won*/) {}
  /// A call was shed without a network attempt because the destination's
  /// circuit breaker was open.
  virtual void record_short_circuit() {}
  /// A destination's circuit breaker changed state. `from`/`to` are
  /// CircuitBreaker::State values cast to int.
  virtual void record_breaker_transition(int /*from*/, int /*to*/) {}
};

/// Default sink: a registry-backed adapter. Every record_* lands in named
/// obs instruments (net.calls.started, net.attempts, net.call.latency_us,
/// ... — DESIGN.md §8), so the call layer shows up in obs::snapshot_json()
/// next to gossip and scheduler series instead of in a private struct.
///
/// Default-constructed sinks own a private Registry — an injected per-bench
/// sink stays isolated, exactly like the old struct-of-ints. Binding an
/// external registry (process_call_stats() binds obs::registry()) shares
/// the instruments with the rest of the process.
class AggregateCallStats final : public CallStatsSink {
 public:
  AggregateCallStats();
  explicit AggregateCallStats(obs::Registry& reg);

  void record_call_start() override { calls_started_->inc(); }
  void record_call_end(bool ok, Duration latency) override {
    (ok ? calls_ok_ : calls_failed_)->inc();
    call_latency_us_->record(static_cast<std::uint64_t>(latency));
  }
  void record_attempt(bool retry, bool hedge) override {
    attempts_->inc();
    if (retry) retries_->inc();
    if (hedge) hedges_->inc();
  }
  void record_timeout(Duration timeout) override {
    timeouts_fired_->inc();
    timeout_wait_us_->record(static_cast<std::uint64_t>(timeout));
  }
  void record_late_response(bool rescued) override {
    late_responses_->inc();
    if (rescued) late_rescues_->inc();
  }
  void record_duplicate_response() override { duplicate_responses_->inc(); }
  void record_hedge_result(bool hedge_won) override {
    (hedge_won ? hedge_wins_ : hedge_losses_)->inc();
  }
  void record_short_circuit() override { short_circuits_->inc(); }
  void record_breaker_transition(int /*from*/, int to) override;

  /// The registry holding this sink's instruments — the owned private one
  /// for default-constructed sinks, the shared one otherwise. Callers read
  /// counter values by obs::names key (the old counters() struct shim is
  /// gone).
  [[nodiscard]] obs::Registry& registry() const { return *reg_; }
  /// Zero this sink's instruments (shared registry: only the net.* set).
  void reset();

 private:
  void bind(obs::Registry& reg);

  std::unique_ptr<obs::Registry> owned_;  // null when bound to a shared one
  obs::Registry* reg_ = nullptr;          // whichever registry bind() used
  obs::Counter* calls_started_ = nullptr;
  obs::Counter* calls_ok_ = nullptr;
  obs::Counter* calls_failed_ = nullptr;
  obs::Counter* attempts_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* hedges_ = nullptr;
  obs::Counter* hedge_wins_ = nullptr;
  obs::Counter* hedge_losses_ = nullptr;
  obs::Counter* timeouts_fired_ = nullptr;
  obs::Counter* late_responses_ = nullptr;
  obs::Counter* late_rescues_ = nullptr;
  obs::Counter* duplicate_responses_ = nullptr;
  obs::Counter* short_circuits_ = nullptr;
  obs::Counter* breaker_opened_ = nullptr;
  obs::Histogram* call_latency_us_ = nullptr;
  obs::Histogram* timeout_wait_us_ = nullptr;
};

/// The process-wide default sink every CallPolicy starts with, bound to
/// obs::registry() — so the call layer's counters appear in every
/// obs::snapshot_json(). Scenario benches read and reset it between
/// experiment arms, exactly like the old Node::reset_global_stats().
AggregateCallStats& process_call_stats();

/// Per-destination failure gate with the classic three states. Counts
/// consecutive transport failures; at the threshold it opens and sheds
/// every call for `open_for`, then lets a limited number of half-open
/// probes through — one success closes it, one failure re-opens it.
class CircuitBreaker {
 public:
  struct Options {
    std::uint32_t failure_threshold = 5;   // consecutive failures to trip
    Duration open_for = 10 * kSecond;      // shed window before probing
    std::uint32_t half_open_probes = 1;    // concurrent probes allowed
  };
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(const Options& opts) : opts_(opts) {}

  [[nodiscard]] State state(TimePoint now) {
    roll(now);
    return state_;
  }

  /// Last-settled state, without rolling the clock forward. Lets observers
  /// diff states around an operation to detect transitions.
  [[nodiscard]] State peek_state() const { return state_; }

  /// May an attempt go out now? Half-open admissions are counted as probes.
  [[nodiscard]] bool allow(TimePoint now);

  /// Transport outcome of an attempt to this destination. Any response —
  /// even an application rejection — proves the host alive. `sent` is when
  /// the attempt left: failures from attempts sent before the breaker last
  /// tripped are *stale evidence* — already priced into that trip — and must
  /// not re-trip a half-open breaker or extend the open window. Without this
  /// guard a burst of N in-flight calls to a briefly-slow peer latches the
  /// breaker open ~N× longer than `open_for` (each straggler timeout
  /// re-trips), shedding unrelated traffic long after the peer recovered.
  void on_result(TimePoint now, TimePoint sent, bool ok);

  /// Attempt outcome with no send-time information: treated as current
  /// evidence (sent = now).
  void on_result(TimePoint now, bool ok) { on_result(now, now, ok); }

  /// An admitted attempt was abandoned (its call completed first) and will
  /// never report a result: free the probe slot it may occupy so the
  /// half-open state cannot latch.
  void release_probe() {
    if (probes_in_flight_ > 0) --probes_in_flight_;
  }

  [[nodiscard]] std::uint64_t times_opened() const { return times_opened_; }

 private:
  void roll(TimePoint now);
  void trip(TimePoint now);

  Options opts_;
  State state_ = State::kClosed;
  TimePoint open_until_ = 0;
  TimePoint evidence_floor_ = 0;  // send-times below this are stale evidence
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t probes_in_flight_ = 0;
  std::uint64_t times_opened_ = 0;
};

/// One breaker per destination endpoint, created on first use.
class CircuitBreakerBank {
 public:
  explicit CircuitBreakerBank(CircuitBreaker::Options opts = {})
      : opts_(opts) {}

  CircuitBreaker& at(const Endpoint& to);
  [[nodiscard]] std::size_t size() const { return by_dest_.size(); }

 private:
  CircuitBreaker::Options opts_;
  std::unordered_map<std::string, CircuitBreaker> by_dest_;
};

/// Everything a Node consults before, during and after a call: the adaptive
/// time-out (one bank per node, as each node observes its own servers), the
/// breaker bank, and the stats sink.
class CallPolicy {
 public:
  struct Options {
    AdaptiveTimeout::Options timeout{};
    CircuitBreaker::Options breaker{};
    /// Breakers ship disabled: shedding changes failure semantics (callers
    /// see kUnavailable without a network attempt) and components opt in.
    bool breaker_enabled = false;
  };

  CallPolicy() : CallPolicy(Options{}) {}
  explicit CallPolicy(const Options& opts)
      : opts_(opts), timeouts_(opts.timeout), breakers_(opts.breaker) {}

  [[nodiscard]] AdaptiveTimeout& timeouts() { return timeouts_; }
  [[nodiscard]] const AdaptiveTimeout& timeouts() const { return timeouts_; }
  [[nodiscard]] CircuitBreakerBank& breakers() { return breakers_; }

  void set_breaker_enabled(bool on) { opts_.breaker_enabled = on; }
  [[nodiscard]] bool breaker_enabled() const { return opts_.breaker_enabled; }

  /// Route stats to `sink`; nullptr restores the process-wide aggregate.
  void set_stats_sink(CallStatsSink* sink) { sink_ = sink; }
  [[nodiscard]] CallStatsSink& stats() const;

  /// Time-out for the next attempt of a call with these options.
  [[nodiscard]] Duration attempt_timeout(const EventTag& tag,
                                         const CallOptions& opts) const;

  /// Delay after which a hedge should fire, or 0 for "don't hedge" (policy
  /// disabled, or no RTT history to forecast from).
  [[nodiscard]] Duration hedge_delay(const EventTag& tag,
                                     const HedgePolicy& hedge) const;

  /// Breaker gate; true when the attempt may proceed.
  [[nodiscard]] bool admit(const Endpoint& to, TimePoint now);

  /// An admitted attempt was cancelled before reporting (its call completed
  /// first); frees any half-open probe slot it held.
  void on_attempt_abandoned(const Endpoint& to);

  /// Feed an attempt's transport outcome to the forecaster and breaker.
  /// `sent` is the attempt's send time, used by the breaker to discount
  /// stale evidence from before its last trip.
  void on_attempt_result(const EventTag& tag, const Endpoint& to,
                         TimePoint now, TimePoint sent, Duration rtt, bool ok);

 private:
  Options opts_;
  AdaptiveTimeout timeouts_;
  CircuitBreakerBank breakers_;
  CallStatsSink* sink_ = nullptr;  // nullptr = process_call_stats()
};

}  // namespace ew
