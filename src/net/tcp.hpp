// Low-level TCP plumbing for the lingua franca.
//
// Faithful to the paper's portability decisions (Section 5.1): only the
// "basic" socket calls (socket/bind/listen/accept/connect/send/recv) plus
// select()-style readiness waiting; no signals, no threads, no fork()ed
// watchdogs — connect time-outs use non-blocking sockets polled with
// select(), the portable replacement the paper arrived at.
#pragma once

#include <cstdint>
#include <span>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"
#include "net/endpoint.hpp"

namespace ew {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Create a listening socket on the given port (all interfaces).
/// Pass port 0 to let the OS pick; use local_port() to discover it.
/// The default backlog admits a c10k-style connection storm (the kernel
/// silently caps it at net.core.somaxconn); the reactor's accept loop
/// drains the queue completely on every readiness event.
/// With `reuse_port` set, several sockets (one per reactor shard) may listen
/// on the same port and the kernel distributes inbound connections across
/// them — the accept-side half of multi-core reactor sharding.
Result<Fd> tcp_listen(std::uint16_t port, int backlog = 4096,
                      bool reuse_port = false);

/// The locally bound port of a socket (for port-0 listeners).
Result<std::uint16_t> local_port(const Fd& fd);

/// Connect to `to` with a time-out (non-blocking connect + select).
/// Only numeric IPv4 addresses and "localhost" are resolved — the toolkit
/// does not depend on a resolver library (cf. the NT Supercluster DNS
/// incident, Section 5.5: name resolution is the deployment's problem).
/// Blocks the caller for up to `timeout`; event-loop code should use
/// tcp_connect_start + a writable watcher instead.
Result<Fd> tcp_connect(const Endpoint& to, Duration timeout);

/// A connect attempt in flight: the (non-blocking) socket plus whether the
/// handshake already finished inside the connect() call (loopback fast
/// path). When `completed` is false the socket selects writable once the
/// handshake resolves; harvest the verdict with tcp_finish_connect.
struct PendingConnect {
  Fd fd;
  bool completed = false;
};

/// Begin a non-blocking connect to `to` and return immediately — never
/// blocks, regardless of how dead the peer is. Resolution rules match
/// tcp_connect.
Result<PendingConnect> tcp_connect_start(const Endpoint& to);

/// After a started connect selects writable: read SO_ERROR and finish the
/// socket set-up (TCP_NODELAY). Returns ok on an established connection,
/// Err::kRefused with the OS verdict otherwise.
Status tcp_finish_connect(const Fd& fd, const Endpoint& to);

/// Mark a socket non-blocking.
Status set_nonblocking(const Fd& fd);

/// Accept one pending connection (listener must be readable). The accepted
/// socket is returned non-blocking.
Result<Fd> tcp_accept(const Fd& listener);

/// Send as much of `data` as the socket accepts right now (non-blocking).
/// Returns the number of bytes written (possibly 0 on EWOULDBLOCK), or an
/// error if the connection is dead.
Result<std::size_t> send_some(const Fd& fd, std::span<const std::uint8_t> data);

/// Scatter-gather variant: one sendmsg(2) over up to IOV_MAX byte ranges —
/// several queued frames leave in a single syscall with no coalescing copy.
/// Ranges beyond the iovec limit simply wait for the next flush. Returns
/// bytes written (possibly 0 on EWOULDBLOCK), or an error if the connection
/// is dead.
Result<std::size_t> send_some(const Fd& fd,
                              std::span<const std::span<const std::uint8_t>> segments);

/// Read whatever is available (non-blocking) into `out` (appending).
/// Returns bytes read; 0 bytes with ok() means EWOULDBLOCK; kClosed means
/// orderly shutdown by the peer.
Result<std::size_t> recv_some(const Fd& fd, Bytes& out);

/// Read directly into caller-provided storage (non-blocking) — the zero-copy
/// receive half: pass FrameParser::recv_buffer() so stream bytes land in the
/// reassembly buffer with no intermediate chunk. Same contract as recv_some.
Result<std::size_t> recv_into(const Fd& fd, std::span<std::uint8_t> out);

/// Block until `fd` is readable or `timeout` elapses (select()).
/// Returns true if readable, false on time-out.
Result<bool> wait_readable(const Fd& fd, Duration timeout);

}  // namespace ew
