#include "net/packet.hpp"

namespace ew {

Bytes encode_packet(const Packet& p) {
  Writer w(wire::kHeaderSize + p.payload.size());
  w.u32(wire::kMagic);
  w.u8(wire::kVersion);
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u16(p.type);
  w.u64(p.seq);
  w.u32(static_cast<std::uint32_t>(p.payload.size()));
  w.raw(p.payload);
  return w.take();
}

void FrameParser::feed(std::span<const std::uint8_t> data) {
  if (poisoned_) return;
  // Compact the consumed prefix occasionally so the buffer does not grow
  // without bound on long-lived connections.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  // Grow geometrically up front: insert() alone reallocates to the exact
  // size, so a stream of small reads would otherwise reallocate (and copy
  // the whole reassembly buffer) on nearly every feed.
  const std::size_t need = buf_.size() + data.size();
  if (need > buf_.capacity()) {
    buf_.reserve(std::max(need, buf_.capacity() * 2));
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<Packet> FrameParser::next() {
  if (poisoned_) return Error{Err::kProtocol, "stream previously poisoned"};
  if (buffered() < wire::kHeaderSize) {
    return Error{Err::kUnavailable, "need header bytes"};
  }
  Reader r(std::span<const std::uint8_t>(buf_).subspan(pos_));
  const auto magic = r.u32();
  const auto version = r.u8();
  const auto kind = r.u8();
  const auto type = r.u16();
  const auto seq = r.u64();
  const auto len = r.u32();
  // Header fits (checked above), so these reads cannot fail.
  if (*magic != wire::kMagic) {
    poisoned_ = true;
    return Error{Err::kProtocol, "bad magic"};
  }
  if (*version != wire::kVersion) {
    poisoned_ = true;
    return Error{Err::kProtocol, "unsupported version " + std::to_string(*version)};
  }
  if (*kind > static_cast<std::uint8_t>(PacketKind::kResponse)) {
    poisoned_ = true;
    return Error{Err::kProtocol, "bad packet kind"};
  }
  if (*len > wire::kMaxPayload) {
    poisoned_ = true;
    return Error{Err::kProtocol, "payload length " + std::to_string(*len) +
                                     " exceeds limit"};
  }
  if (buffered() < wire::kHeaderSize + *len) {
    return Error{Err::kUnavailable, "need payload bytes"};
  }
  Packet p;
  p.kind = static_cast<PacketKind>(*kind);
  p.type = *type;
  p.seq = *seq;
  const std::size_t payload_at = pos_ + wire::kHeaderSize;
  if (pos_ == 0 && buf_.size() == wire::kHeaderSize + *len) {
    // The frame is exactly the buffer: steal the buffer instead of copying
    // the payload out (the common case — one whole packet per read on
    // request/response traffic). Trimming the header is a memmove within
    // the stolen allocation, not a fresh allocation + copy.
    p.payload = std::move(buf_);
    p.payload.erase(p.payload.begin(),
                    p.payload.begin() + static_cast<std::ptrdiff_t>(wire::kHeaderSize));
    buf_.clear();
    pos_ = 0;
    return p;
  }
  p.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(payload_at),
                   buf_.begin() + static_cast<std::ptrdiff_t>(payload_at + *len));
  pos_ = payload_at + *len;
  return p;
}

}  // namespace ew
