#include "net/packet.hpp"

#include "obs/registry.hpp"

namespace ew {

namespace wire {

std::uint32_t checksum(MsgType type, std::uint64_t seq,
                       std::span<const std::uint8_t> payload) {
  // FNV-1a, 32-bit. Fields are hashed in their little-endian wire order so
  // the sum equals "hash the frame bytes from `type` through the payload".
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  mix(static_cast<std::uint8_t>(type & 0xff));
  mix(static_cast<std::uint8_t>(type >> 8));
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(seq >> (8 * i)));
  for (std::uint8_t b : payload) mix(b);
  return h;
}

}  // namespace wire

namespace {

// Resolved once: frame corruption is detected on the receive path of every
// transport, so the counter lives in the process registry.
obs::Counter& corrupt_frames_counter() {
  static obs::Counter* c =
      &obs::registry().counter(obs::names::kNetFramesCorrupt);
  return *c;
}

}  // namespace

Bytes encode_packet(const Packet& p) {
  Writer w(wire::kHeaderSize + p.payload.size());
  w.u32(wire::kMagic);
  w.u8(wire::kVersion);
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u16(p.type);
  w.u64(p.seq);
  w.u32(static_cast<std::uint32_t>(p.payload.size()));
  w.u32(wire::checksum(p.type, p.seq, p.payload));
  w.raw(p.payload);
  return w.take();
}

void FrameParser::feed(std::span<const std::uint8_t> data) {
  if (poisoned_) return;
  // Compact the consumed prefix occasionally so the buffer does not grow
  // without bound on long-lived connections.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  // Grow geometrically up front: insert() alone reallocates to the exact
  // size, so a stream of small reads would otherwise reallocate (and copy
  // the whole reassembly buffer) on nearly every feed.
  const std::size_t need = buf_.size() + data.size();
  if (need > buf_.capacity()) {
    buf_.reserve(std::max(need, buf_.capacity() * 2));
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<Packet> FrameParser::next() {
  if (poisoned_) return Error{Err::kProtocol, "stream previously poisoned"};
  if (buffered() < wire::kHeaderSize) {
    return Error{Err::kUnavailable, "need header bytes"};
  }
  Reader r(std::span<const std::uint8_t>(buf_).subspan(pos_));
  const auto magic = r.u32();
  const auto version = r.u8();
  const auto kind = r.u8();
  const auto type = r.u16();
  const auto seq = r.u64();
  const auto len = r.u32();
  const auto sum = r.u32();
  // Header fits (checked above), so these reads cannot fail.
  if (*magic != wire::kMagic) {
    poisoned_ = true;
    return Error{Err::kProtocol, "bad magic"};
  }
  if (*version != wire::kVersion) {
    poisoned_ = true;
    return Error{Err::kProtocol, "unsupported version " + std::to_string(*version)};
  }
  if (*kind > static_cast<std::uint8_t>(PacketKind::kResponse)) {
    poisoned_ = true;
    return Error{Err::kProtocol, "bad packet kind"};
  }
  if (*len > wire::kMaxPayload) {
    poisoned_ = true;
    return Error{Err::kProtocol, "payload length " + std::to_string(*len) +
                                     " exceeds limit"};
  }
  if (buffered() < wire::kHeaderSize + *len) {
    return Error{Err::kUnavailable, "need payload bytes"};
  }
  const std::size_t payload_at = pos_ + wire::kHeaderSize;
  const auto payload_span =
      std::span<const std::uint8_t>(buf_).subspan(payload_at, *len);
  if (*sum != wire::checksum(*type, *seq, payload_span)) {
    poisoned_ = true;
    corrupt_frames_counter().inc();
    return Error{Err::kProtocol, "checksum mismatch"};
  }
  Packet p;
  p.kind = static_cast<PacketKind>(*kind);
  p.type = *type;
  p.seq = *seq;
  if (pos_ == 0 && buf_.size() == wire::kHeaderSize + *len) {
    // The frame is exactly the buffer: steal the buffer instead of copying
    // the payload out (the common case — one whole packet per read on
    // request/response traffic). Trimming the header is a memmove within
    // the stolen allocation, not a fresh allocation + copy.
    p.payload = std::move(buf_);
    p.payload.erase(p.payload.begin(),
                    p.payload.begin() + static_cast<std::ptrdiff_t>(wire::kHeaderSize));
    buf_.clear();
    pos_ = 0;
    return p;
  }
  p.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(payload_at),
                   buf_.begin() + static_cast<std::ptrdiff_t>(payload_at + *len));
  pos_ = payload_at + *len;
  return p;
}

}  // namespace ew
