#include "net/packet.hpp"

#include <cstring>

#include "obs/registry.hpp"

namespace ew {

namespace wire {

std::uint32_t checksum(MsgType type, std::uint64_t seq,
                       std::span<const std::uint8_t> payload) {
  // FNV-1a, 32-bit. Fields are hashed in their little-endian wire order so
  // the sum equals "hash the frame bytes from `type` through the payload".
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  mix(static_cast<std::uint8_t>(type & 0xff));
  mix(static_cast<std::uint8_t>(type >> 8));
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(seq >> (8 * i)));
  for (std::uint8_t b : payload) mix(b);
  return h;
}

}  // namespace wire

namespace {

// Resolved once: frame corruption is detected on the receive path of every
// transport, so the counter lives in the process registry.
obs::Counter& corrupt_frames_counter() {
  static obs::Counter* c =
      &obs::registry().counter(obs::names::kNetFramesCorrupt);
  return *c;
}

}  // namespace

Bytes encode_packet(const Packet& p) {
  Writer w(wire::kHeaderSize + p.payload.size());
  w.u32(wire::kMagic);
  w.u8(wire::kVersion);
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u16(p.type);
  w.u64(p.seq);
  w.u32(static_cast<std::uint32_t>(p.payload.size()));
  w.u32(wire::checksum(p.type, p.seq, p.payload));
  w.raw(p.payload);
  return w.take();
}

std::span<std::uint8_t> FrameParser::recv_buffer(std::size_t min_bytes) {
  if (min_bytes == 0) min_bytes = 1;
  // Compact the consumed prefix when it dominates the buffer, so a
  // long-lived connection cannot pin memory behind pos_. A fully-consumed
  // buffer resets for free.
  if (pos_ == end_) {
    pos_ = 0;
    end_ = 0;
  } else if (pos_ > 4096 && pos_ * 2 > end_) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  // Grow geometrically: resize() zero-fills only the new region and is
  // amortized O(1), so a stream of small reads never re-copies the whole
  // reassembly buffer per read.
  if (buf_.size() - end_ < min_bytes) {
    buf_.resize(std::max(end_ + min_bytes, buf_.size() * 2));
  }
  return std::span<std::uint8_t>(buf_).subspan(end_);
}

void FrameParser::commit(std::size_t n) {
  if (poisoned_) return;
  end_ += n;
}

void FrameParser::feed(std::span<const std::uint8_t> data) {
  if (poisoned_ || data.empty()) return;
  auto dst = recv_buffer(data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  commit(data.size());
}

Result<FrameView> FrameParser::peek_frame() {
  if (poisoned_) return Error{Err::kProtocol, "stream previously poisoned"};
  if (buffered() < wire::kHeaderSize) {
    return Error{Err::kUnavailable, "need header bytes"};
  }
  Reader r(std::span<const std::uint8_t>(buf_).subspan(pos_, end_ - pos_));
  const auto magic = r.u32();
  const auto version = r.u8();
  const auto kind = r.u8();
  const auto type = r.u16();
  const auto seq = r.u64();
  const auto len = r.u32();
  const auto sum = r.u32();
  // Header fits (checked above), so these reads cannot fail.
  if (*magic != wire::kMagic) {
    poisoned_ = true;
    return Error{Err::kProtocol, "bad magic"};
  }
  if (*version != wire::kVersion) {
    poisoned_ = true;
    return Error{Err::kProtocol, "unsupported version " + std::to_string(*version)};
  }
  if (*kind > static_cast<std::uint8_t>(PacketKind::kResponse)) {
    poisoned_ = true;
    return Error{Err::kProtocol, "bad packet kind"};
  }
  if (*len > wire::kMaxPayload) {
    poisoned_ = true;
    return Error{Err::kProtocol, "payload length " + std::to_string(*len) +
                                     " exceeds limit"};
  }
  if (buffered() < wire::kHeaderSize + *len) {
    return Error{Err::kUnavailable, "need payload bytes"};
  }
  const auto payload_span = std::span<const std::uint8_t>(buf_).subspan(
      pos_ + wire::kHeaderSize, *len);
  if (*sum != wire::checksum(*type, *seq, payload_span)) {
    poisoned_ = true;
    corrupt_frames_counter().inc();
    return Error{Err::kProtocol, "checksum mismatch"};
  }
  FrameView v;
  v.kind = static_cast<PacketKind>(*kind);
  v.type = *type;
  v.seq = *seq;
  v.payload = payload_span;
  return v;
}

Result<FrameView> FrameParser::next_view() {
  auto v = peek_frame();
  if (!v) return v;
  pos_ += wire::kHeaderSize + v->payload.size();
  return v;
}

Result<Packet> FrameParser::next() {
  auto v = peek_frame();
  if (!v) return v.error();
  const std::size_t frame_size = wire::kHeaderSize + v->payload.size();
  Packet p;
  p.kind = v->kind;
  p.type = v->type;
  p.seq = v->seq;
  if (pos_ == 0 && end_ == frame_size) {
    // The frame is exactly the valid data: steal the buffer instead of
    // copying the payload out (the common case — one whole packet per read
    // on request/response traffic). Trimming the header is a memmove within
    // the stolen allocation, not a fresh allocation + copy.
    p.payload = std::move(buf_);
    p.payload.resize(frame_size);  // shrink: drops any uncommitted tail
    p.payload.erase(p.payload.begin(),
                    p.payload.begin() + static_cast<std::ptrdiff_t>(wire::kHeaderSize));
    buf_.clear();
    pos_ = 0;
    end_ = 0;
    return p;
  }
  p.payload.assign(v->payload.begin(), v->payload.end());
  pos_ += frame_size;
  return p;
}

}  // namespace ew
