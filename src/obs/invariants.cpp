#include "obs/invariants.hpp"

#include <map>
#include <sstream>
#include <utility>

namespace ew::obs {

namespace {

// sim::FaultKind wire values carried in kChaosFault's a word. obs cannot
// include sim headers (sim links against obs), so the two values the checker
// interprets are pinned here; fault_kind_name() round-trips them in tests.
constexpr std::int64_t kFaultCrash = 0;
constexpr std::int64_t kFaultRestart = 1;

// CircuitBreaker::State wire value for kOpen in kBreakerTransition's a/b.
constexpr std::int64_t kBreakerOpen = 1;

// Chaos faults target hosts; scheduler/clique spans are tagged with
// "host:port" endpoints. Joining the two means dropping the port.
std::string host_of(const std::string& endpoint) {
  const auto colon = endpoint.find(':');
  return colon == std::string::npos ? endpoint : endpoint.substr(0, colon);
}

struct UnitRec {
  std::int64_t last_issued_at = 0;
  bool reclaimed = false;
};

}  // namespace

InvariantReport check_invariants(const TraceRecorder& rec,
                                 const InvariantOptions& opts) {
  InvariantReport report;
  if (rec.dropped() != 0) {
    std::ostringstream os;
    os << "trace ring dropped " << rec.dropped()
       << " events; invariant accounting is unsound (enlarge the ring)";
    report.violations.push_back(os.str());
  }

  const auto spans = rec.snapshot();
  const std::int64_t end = spans.empty() ? 0 : spans.back().at;

  // (scheduler tag, unit id) → issue/reclaim state. Ordered so the final
  // sweep reports violations in a deterministic order.
  std::map<std::pair<std::uint32_t, std::uint64_t>, UnitRec> units;
  // host → crash/restart times, in trace order.
  std::map<std::string, std::vector<std::int64_t>> crashes;
  std::map<std::string, std::vector<std::int64_t>> restarts;
  // member tag → last generation seen this incarnation (-1 = none yet).
  std::map<std::uint32_t, std::int64_t> last_gen;
  // breaker tag → time it entered kOpen (erased when it leaves).
  std::map<std::uint32_t, std::int64_t> open_since;

  for (const auto& ev : spans) {
    switch (ev.kind) {
      case SpanKind::kSchedUnitIssued: {
        ++report.units_issued;
        const auto key = std::make_pair(ev.tag, static_cast<std::uint64_t>(ev.a));
        auto it = units.find(key);
        if (it != units.end()) {
          // Same unit issued again: re-issue after the holder's scheduler
          // crashed (the recovery path) or after a reclaim (migration).
          const auto& host_crashes = crashes[host_of(rec.tag_name(ev.tag))];
          bool crashed_since = false;
          for (auto t : host_crashes) {
            if (t >= it->second.last_issued_at) { crashed_since = true; break; }
          }
          if (crashed_since && !it->second.reclaimed) {
            ++report.units_reissued_after_crash;
          } else if (!it->second.reclaimed) {
            // No crash since the previous issue and no reclaim in between:
            // the scheduler handed the same unit to two holders at once.
            // (A restart re-import is covered by the crash branch above;
            // migration reclaims before it re-issues.)
            ++report.units_double_issued;
            std::ostringstream os;
            os << "work unit " << static_cast<std::uint64_t>(ev.a)
               << " re-issued by " << rec.tag_name(ev.tag) << " at t=" << ev.at
               << " while still outstanding (issued t="
               << it->second.last_issued_at
               << ", no reclaim and no crash in between): double-issued";
            report.violations.push_back(os.str());
          }
          it->second.last_issued_at = ev.at;
          it->second.reclaimed = false;
        } else {
          units.emplace(key, UnitRec{ev.at, false});
        }
        break;
      }
      case SpanKind::kSchedUnitReclaimed: {
        ++report.units_reclaimed;
        const auto key = std::make_pair(ev.tag, static_cast<std::uint64_t>(ev.a));
        auto it = units.find(key);
        if (it != units.end()) it->second.reclaimed = true;
        break;
      }
      case SpanKind::kCliqueViewChange: {
        ++report.view_changes;
        auto it = last_gen.find(ev.tag);
        if (it != last_gen.end() && ev.a < it->second) {
          std::ostringstream os;
          os << "clique generation regressed on " << rec.tag_name(ev.tag)
             << ": " << it->second << " -> " << ev.a << " at t=" << ev.at;
          report.violations.push_back(os.str());
        }
        last_gen[ev.tag] = ev.a;
        break;
      }
      case SpanKind::kBreakerTransition: {
        if (ev.b == kBreakerOpen && ev.a != kBreakerOpen) {
          ++report.breaker_opens;
          open_since.emplace(ev.tag, ev.at);
        } else if (ev.a == kBreakerOpen && ev.b != kBreakerOpen) {
          ++report.breaker_reprobes;
          open_since.erase(ev.tag);
        }
        break;
      }
      case SpanKind::kGossipDelta: {
        ++report.gossip_deltas;
        report.gossip_delta_blobs += static_cast<std::uint64_t>(ev.a);
        // A delta exchange is only emitted when it carries something —
        // blobs (a) or registrations (b). An empty one means the planner
        // computed a bogus want-list or the codec dropped the payload.
        if (ev.a <= 0 && ev.b <= 0) {
          std::ostringstream os;
          os << "empty gossip delta at t=" << ev.at << " on "
             << rec.tag_name(ev.tag) << ": anti-entropy sent nothing";
          report.violations.push_back(os.str());
        }
        break;
      }
      case SpanKind::kChaosFault: {
        ++report.chaos_faults;
        const std::string host = rec.tag_name(ev.tag);
        if (ev.a == kFaultCrash) {
          crashes[host].push_back(ev.at);
        } else if (ev.a == kFaultRestart) {
          restarts[host].push_back(ev.at);
        }
        if (ev.a == kFaultCrash || ev.a == kFaultRestart) {
          // A crash or restart starts a new incarnation for every component
          // on that host: its clique member legitimately restarts at a
          // lower generation.
          for (auto& [tag, gen] : last_gen) {
            if (host_of(rec.tag_name(tag)) == host) gen = -1;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Final sweep: every issued-and-never-reclaimed unit must be explained.
  for (const auto& [key, u] : units) {
    if (u.reclaimed) continue;
    const std::uint64_t unit_id = key.second;
    if (opts.live_units.count(unit_id) != 0) continue;
    const std::string sched = rec.tag_name(key.first);
    const std::string host = host_of(sched);
    // Did the issuing scheduler's host crash after the unit went out?
    std::int64_t crash_at = -1;
    auto cit = crashes.find(host);
    if (cit != crashes.end()) {
      for (auto t : cit->second) {
        if (t >= u.last_issued_at) { crash_at = t; break; }
      }
    }
    if (crash_at < 0) {
      ++report.units_lost;
      std::ostringstream os;
      os << "work unit " << unit_id << " issued by " << sched << " at t="
         << u.last_issued_at << " was never reclaimed, is not live, and the "
         << "scheduler never crashed: permanently lost";
      report.violations.push_back(os.str());
      continue;
    }
    // Crashed: forgiven if the host restarted afterwards (the recovery path
    // will re-issue it) or the crash landed inside the end-of-trace grace.
    bool restarted_after = false;
    auto rit = restarts.find(host);
    if (rit != restarts.end()) {
      for (auto t : rit->second) {
        if (t >= crash_at) { restarted_after = true; break; }
      }
    }
    if (restarted_after || crash_at >= end - opts.crash_grace_us) continue;
    ++report.units_lost;
    std::ostringstream os;
    os << "work unit " << unit_id << " issued by " << sched
       << " was in flight when " << host << " crashed at t=" << crash_at
       << " and the scheduler never restarted: permanently lost";
    report.violations.push_back(os.str());
  }

  // Every breaker still open at the end must have opened recently enough
  // that its cooldown simply had not elapsed yet.
  for (const auto& [tag, at] : open_since) {
    if (at >= end - opts.breaker_grace_us) continue;
    std::ostringstream os;
    os << "circuit breaker for " << rec.tag_name(tag) << " opened at t=" << at
       << " and never probed (trace ends at t=" << end << ")";
    report.violations.push_back(os.str());
  }

  return report;
}

}  // namespace ew::obs
