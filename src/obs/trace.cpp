#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace ew::obs {

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kCallAttempt: return "call.attempt";
    case SpanKind::kCallRetry: return "call.retry";
    case SpanKind::kCallHedge: return "call.hedge";
    case SpanKind::kBreakerTransition: return "breaker.transition";
    case SpanKind::kGossipSyncRound: return "gossip.sync_round";
    case SpanKind::kGossipPoll: return "gossip.poll";
    case SpanKind::kCliqueTokenPass: return "clique.token_pass";
    case SpanKind::kCliqueElection: return "clique.election";
    case SpanKind::kSchedDispatch: return "sched.dispatch";
    case SpanKind::kSchedMigration: return "sched.migration";
    case SpanKind::kForecastMethodSwitch: return "forecast.method_switch";
    case SpanKind::kCliqueViewChange: return "clique.view_change";
    case SpanKind::kSchedUnitIssued: return "sched.unit_issued";
    case SpanKind::kSchedUnitReclaimed: return "sched.unit_reclaimed";
    case SpanKind::kChaosFault: return "chaos.fault";
    case SpanKind::kGossipDelta: return "gossip.delta";
    case SpanKind::kWishJob: return "wish.job";
    case SpanKind::kWishBarrier: return "wish.barrier";
    case SpanKind::kWishCollective: return "wish.collective";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) {
  ring_.reserve(capacity == 0 ? 1 : capacity);
  ring_.resize(0);
  cap_ = capacity == 0 ? 1 : capacity;
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mu_);
  cap_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(cap_);
  total_ = 0;
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard lock(mu_);
  return cap_;
}

std::uint32_t TraceRecorder::intern(std::string_view s) {
  std::lock_guard lock(mu_);
  auto it = tag_ids_.find(std::string(s));
  if (it != tag_ids_.end()) return it->second;
  tag_names_.emplace_back(s);
  const auto id = static_cast<std::uint32_t>(tag_names_.size());  // 1-based
  tag_ids_.emplace(tag_names_.back(), id);
  return id;
}

std::string TraceRecorder::tag_name(std::uint32_t id) const {
  std::lock_guard lock(mu_);
  if (id == 0 || id > tag_names_.size()) return {};
  return tag_names_[id - 1];
}

void TraceRecorder::record(std::int64_t at, SpanKind kind, std::uint32_t tag,
                           std::int64_t a, std::int64_t b) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  const SpanEvent ev{at, kind, tag, a, b};
  if (ring_.size() < cap_) {
    ring_.push_back(ev);  // within reserved capacity: no allocation
  } else {
    ring_[total_ % cap_] = ev;  // overwrite the oldest slot
  }
  ++total_;
}

std::uint64_t TraceRecorder::total() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mu_);
  return total_ - ring_.size();
}

std::vector<SpanEvent> TraceRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < cap_) {
    out = ring_;
  } else {
    // Ring is full: the oldest event sits at the next overwrite position.
    const std::size_t head = total_ % cap_;
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

namespace {
void append_quoted(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}
}  // namespace

std::string TraceRecorder::to_json() const {
  const std::vector<SpanEvent> events = snapshot();
  std::uint64_t total;
  {
    std::lock_guard lock(mu_);
    total = total_;
  }
  std::string out;
  out.reserve(96 * events.size() + 64);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"total\":%" PRIu64 ",\"dropped\":%" PRIu64 ",\"events\":[",
                total, total - events.size());
  out += buf;
  bool first = true;
  for (const SpanEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"at\":%" PRId64 ",\"kind\":", ev.at);
    out += buf;
    append_quoted(out, span_kind_name(ev.kind));
    out += ",\"tag\":";
    append_quoted(out, tag_name(ev.tag));
    std::snprintf(buf, sizeof(buf), ",\"a\":%" PRId64 ",\"b\":%" PRId64 "}",
                  ev.a, ev.b);
    out += buf;
  }
  out += "]}";
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  ring_.reserve(cap_);
  total_ = 0;
}

void TraceRecorder::reset() {
  std::lock_guard lock(mu_);
  ring_.clear();
  ring_.reserve(cap_);
  total_ = 0;
  tag_names_.clear();
  tag_ids_.clear();
}

TraceRecorder& trace() {
  static TraceRecorder* t = new TraceRecorder();
  return *t;
}

}  // namespace ew::obs
