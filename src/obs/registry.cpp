#include "obs/registry.hpp"

#include <cinttypes>
#include <cstdio>

namespace ew::obs {

void Gauge::add(double d) {
  // CAS loop over the bit pattern; atomic<double>::fetch_add is C++20 but
  // spotty across libstdc++ targets, and this path is never hot.
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t desired =
        std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + d);
    if (bits_.compare_exchange_weak(expected, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::size_t Registry::instrument_count() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string Registry::snapshot_json() const {
  std::lock_guard lock(mu_);
  std::string out;
  out.reserve(64 * (counters_.size() + gauges_.size()) +
              256 * histograms_.size() + 64);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_quoted(out, name);
    out.push_back(':');
    append_u64(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_quoted(out, name);
    out.push_back(':');
    append_f64(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_quoted(out, name);
    out += ":{\"count\":";
    append_u64(out, h->count());
    out += ",\"sum\":";
    append_u64(out, h->sum());
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      if (!bfirst) out.push_back(',');
      bfirst = false;
      out.push_back('[');
      append_u64(out, Histogram::bucket_upper(b));
      out.push_back(',');
      append_u64(out, n);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

const std::vector<const char*>& mandatory_counters() {
  static const std::vector<const char*> kList = {
      names::kNetCallsStarted,    names::kNetCallsOk,
      names::kNetCallsFailed,     names::kNetAttempts,
      names::kNetRetries,         names::kNetHedges,
      names::kNetHedgeWins,       names::kNetHedgeLosses,
      names::kNetTimeoutsFired,   names::kNetLateResponses,
      names::kNetLateRescues,     names::kNetDuplicateResponses,
      names::kNetShortCircuits,   names::kNetBreakerOpened,
      names::kNetFramesCorrupt,   names::kNetFramesTruncated,
      names::kNetBackpressureRejects, names::kGossipSyncRounds,
      names::kGossipPolls,
      names::kGossipUpdatesPushed, names::kGossipStatesAbsorbed,
      names::kGossipDeltaBlobs,   names::kGossipMergeNew,
      names::kGossipMergeFresher, names::kGossipMergeStale,
      names::kGossipMergeEqual,   names::kGossipMergeMerged,
      names::kCliqueTokens,       names::kCliqueRounds,
      names::kCliqueFragmentations, names::kCliqueElections,
      names::kSchedDispatches,    names::kSchedReports,
      names::kSchedMigrations,    names::kSchedPresumedDead,
      names::kSchedBatchReports,  names::kSchedBatchReplays,
      names::kSchedUnitsRevoked,  names::kSchedShardSteals,
      names::kForecastMethodSwitches, names::kAppDroppedSamples,
  };
  return kList;
}

const std::vector<const char*>& mandatory_gauges() {
  static const std::vector<const char*> kList = {
      names::kNetConnsOpen,
      names::kNetOutboxBytes,
      names::kSchedOutstandingUnits,
      names::kSchedFrontierUnits,
  };
  return kList;
}

const std::vector<const char*>& mandatory_histograms() {
  static const std::vector<const char*> kList = {
      names::kNetCallLatencyUs,
      names::kNetTimeoutWaitUs,
      names::kGossipDigestBytes,
      names::kGossipConvergenceRounds,
      names::kSchedDirectiveLatencyUs,
  };
  return kList;
}

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    for (const char* n : mandatory_counters()) reg->counter(n);
    for (const char* n : mandatory_gauges()) reg->gauge(n);
    for (const char* n : mandatory_histograms()) reg->histogram(n);
    return reg;
  }();
  return *r;
}

std::string snapshot_json() { return registry().snapshot_json(); }

}  // namespace ew::obs
