// Process-wide metrics registry: the single place to look when a clique
// partitions or a breaker opens.
//
// The SC98 application's stability came from watching itself run (paper
// Sections 2.2, 3.1.3): every request/response event was tagged, timed and
// fed back. PR 1 and PR 2 left that telemetry fragmented across four one-off
// APIs; this registry unifies them behind three lock-cheap instruments:
//
//   * Counter   — monotonically increasing relaxed atomic;
//   * Gauge     — last-written double (bit-cast through an atomic word);
//   * Histogram — log-bucketed latency distribution; record() is a handful
//     of relaxed fetch_adds, no locks, no allocation (<50 ns target,
//     verified by bench/micro_obs).
//
// Instruments are registered by name (optionally name{label}) and live for
// the registry's lifetime, so callers resolve a pointer once and record
// through it forever. snapshot_json() renders every instrument into one
// machine-readable JSON document with sorted keys — byte-identical for
// identical instrument states, which is what makes sim-clock runs replayable.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ew::obs {

/// Monotonic event count. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written level (host counts, queue depths). Stored as the double's
/// bit pattern in an atomic word so set/read stay lock-free everywhere.
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void add(double d);
  [[nodiscard]] double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};  // 0 is the bit pattern of +0.0
};

/// Log-bucketed histogram over non-negative integer samples (microsecond
/// latencies). Bucket b holds samples of bit width b — i.e. [2^(b-1), 2^b)
/// — with bucket 0 holding exact zeros, so boundaries are powers of two and
/// bucketing is one std::bit_width. The record path is three relaxed
/// fetch_adds: no locks, no allocation, hot-path safe.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit widths 0..64

  void record(std::uint64_t v) {
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Largest sample value bucket b can hold (inclusive).
  [[nodiscard]] static std::uint64_t bucket_upper(int b) {
    if (b <= 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name → instrument store. Registration (find-or-create) takes a mutex;
/// the returned reference is stable for the registry's lifetime, so the
/// recording paths never touch the lock. Keys are kept sorted so the JSON
/// snapshot is deterministic.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Counter& counter(std::string_view name, std::string_view label) {
    return counter(keyed(name, label));
  }
  Gauge& gauge(std::string_view name);
  Gauge& gauge(std::string_view name, std::string_view label) {
    return gauge(keyed(name, label));
  }
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::string_view label) {
    return histogram(keyed(name, label));
  }

  /// One machine-readable JSON document over every registered instrument:
  ///   {"counters":{name:value,...},"gauges":{name:value,...},
  ///    "histograms":{name:{"count":n,"sum":s,"buckets":[[upper,count],...]}}}
  /// Keys sorted; histogram buckets listed only when non-empty. Identical
  /// instrument states render byte-identically.
  [[nodiscard]] std::string snapshot_json() const;

  /// Zero every instrument. Registrations (and resolved pointers) survive.
  void reset();

  [[nodiscard]] std::size_t instrument_count() const;

 private:
  static std::string keyed(std::string_view name, std::string_view label) {
    std::string k;
    k.reserve(name.size() + label.size() + 2);
    k.append(name).push_back('{');
    k.append(label).push_back('}');
    return k;
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry. Its mandatory instrument set (names below) is
/// pre-registered at first use, so a snapshot always contains every core
/// series — at zero if the subsystem never ran.
Registry& registry();

/// registry().snapshot_json() — the one call benches print.
[[nodiscard]] std::string snapshot_json();

/// Canonical instrument names: `<subsystem>.<noun>[.<qualifier>]`, units as
/// a `_us` suffix where they matter, per-entity series via `name{label}`.
/// See DESIGN.md §8 for the scheme.
namespace names {
inline constexpr const char* kNetCallsStarted = "net.calls.started";
inline constexpr const char* kNetCallsOk = "net.calls.ok";
inline constexpr const char* kNetCallsFailed = "net.calls.failed";
inline constexpr const char* kNetAttempts = "net.attempts";
inline constexpr const char* kNetRetries = "net.retries";
inline constexpr const char* kNetHedges = "net.hedges";
inline constexpr const char* kNetHedgeWins = "net.hedge_wins";
inline constexpr const char* kNetHedgeLosses = "net.hedge_losses";
inline constexpr const char* kNetTimeoutsFired = "net.timeouts_fired";
inline constexpr const char* kNetLateResponses = "net.late_responses";
inline constexpr const char* kNetLateRescues = "net.late_rescues";
inline constexpr const char* kNetDuplicateResponses = "net.duplicate_responses";
inline constexpr const char* kNetShortCircuits = "net.short_circuits";
inline constexpr const char* kNetBreakerOpened = "net.breaker.opened";
inline constexpr const char* kNetFramesCorrupt = "net.frames.corrupt";
inline constexpr const char* kNetFramesTruncated = "net.frames.truncated";
inline constexpr const char* kNetBackpressureRejects = "net.backpressure_rejects";
inline constexpr const char* kNetConnsOpen = "net.conns_open";
inline constexpr const char* kNetOutboxBytes = "net.outbox_bytes";
inline constexpr const char* kNetCallLatencyUs = "net.call.latency_us";
inline constexpr const char* kNetTimeoutWaitUs = "net.timeout.wait_us";
inline constexpr const char* kGossipSyncRounds = "gossip.sync_rounds";
inline constexpr const char* kGossipPolls = "gossip.polls";
inline constexpr const char* kGossipPollCacheHits = "gossip.poll.cache_hits";
inline constexpr const char* kGossipUpdatesPushed = "gossip.updates_pushed";
inline constexpr const char* kGossipStatesAbsorbed = "gossip.states_absorbed";
inline constexpr const char* kGossipDeltaBlobs = "gossip.delta_blobs";
inline constexpr const char* kGossipMergeNew = "gossip.merge.new";
inline constexpr const char* kGossipMergeFresher = "gossip.merge.fresher";
inline constexpr const char* kGossipMergeStale = "gossip.merge.stale";
inline constexpr const char* kGossipMergeEqual = "gossip.merge.equal";
inline constexpr const char* kGossipMergeMerged = "gossip.merge.merged";
inline constexpr const char* kGossipDigestBytes = "gossip.digest_bytes";
inline constexpr const char* kGossipConvergenceRounds =
    "gossip.convergence_rounds";
inline constexpr const char* kCliqueTokens = "clique.tokens";
inline constexpr const char* kCliqueRounds = "clique.rounds";
inline constexpr const char* kCliqueFragmentations = "clique.fragmentations";
inline constexpr const char* kCliqueElections = "clique.elections";
inline constexpr const char* kSchedDispatches = "sched.dispatches";
inline constexpr const char* kSchedReports = "sched.reports";
inline constexpr const char* kSchedMigrations = "sched.migrations";
inline constexpr const char* kSchedPresumedDead = "sched.presumed_dead";
// Batched directive API (DESIGN.md §13): report batches absorbed, duplicate
// (hedged/retried) batches answered from the reply cache, units revoked by
// directive, and frontier units pulled across shard mint rotation.
inline constexpr const char* kSchedBatchReports = "sched.batch_reports";
inline constexpr const char* kSchedBatchReplays = "sched.batch_replays";
inline constexpr const char* kSchedUnitsRevoked = "sched.units_revoked";
inline constexpr const char* kSchedShardSteals = "sched.shard_steals";
inline constexpr const char* kSchedOutstandingUnits = "sched.outstanding_units";
inline constexpr const char* kSchedFrontierUnits = "sched.frontier_units";
inline constexpr const char* kSchedDirectiveLatencyUs =
    "sched.directive_latency_us";
inline constexpr const char* kForecastMethodSwitches =
    "forecast.method_switches";
inline constexpr const char* kAppDroppedSamples = "app.metrics.dropped_samples";
inline constexpr const char* kWishJobsSpawned = "wish.jobs.spawned";
inline constexpr const char* kWishJobsCompleted = "wish.jobs.completed";
inline constexpr const char* kWishJobsKilled = "wish.jobs.killed";
inline constexpr const char* kWishJobsUnknownPolls = "wish.jobs.unknown_polls";
inline constexpr const char* kWishEnvSets = "wish.env.sets";
inline constexpr const char* kWishEnvMerges = "wish.env.merges";
inline constexpr const char* kWishEnvGhostRemints = "wish.env.ghost_remints";
inline constexpr const char* kWishBarrierRounds = "wish.barrier.rounds";
inline constexpr const char* kWishBarrierReentries = "wish.barrier.reentries";
inline constexpr const char* kWishLeaderClaims = "wish.leader.claims";
inline constexpr const char* kWishScatterForwards = "wish.scatter.forwards";
}  // namespace names

/// The instruments every snapshot of the process-wide registry must contain
/// (the ctest mandatory-set check iterates this).
[[nodiscard]] const std::vector<const char*>& mandatory_counters();
[[nodiscard]] const std::vector<const char*>& mandatory_gauges();
[[nodiscard]] const std::vector<const char*>& mandatory_histograms();

}  // namespace ew::obs
