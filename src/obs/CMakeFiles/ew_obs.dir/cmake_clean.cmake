file(REMOVE_RECURSE
  "CMakeFiles/ew_obs.dir/invariants.cpp.o"
  "CMakeFiles/ew_obs.dir/invariants.cpp.o.d"
  "CMakeFiles/ew_obs.dir/registry.cpp.o"
  "CMakeFiles/ew_obs.dir/registry.cpp.o.d"
  "CMakeFiles/ew_obs.dir/trace.cpp.o"
  "CMakeFiles/ew_obs.dir/trace.cpp.o.d"
  "libew_obs.a"
  "libew_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
