# Empty dependencies file for ew_obs.
# This may be replaced when dependencies are built.
