file(REMOVE_RECURSE
  "libew_obs.a"
)
