// Structured trace recorder: a bounded ring buffer of typed span events.
//
// Where the registry answers "how many / how long", the trace answers "in
// what order": every decision point in the toolkit — call attempt, retry,
// hedge, breaker transition, gossip sync round, clique token pass, leader
// election, scheduler dispatch, forecaster method switch — records one
// fixed-size SpanEvent stamped with the caller's clock (the sim clock in
// simulation, so traces replay bit-identically) and the interned
// dynamic-benchmarking event tag, so spans join against forecast streams.
//
// Tracing is off by default; every emission site guards on enabled(), so a
// disabled recorder costs one relaxed load per decision point and allocates
// nothing. When the ring fills, the oldest event is evicted and the total
// recorded count is preserved (dropped() = total() - size()).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ew::obs {

/// The span taxonomy. One kind per decision point; DESIGN.md §8 maps each
/// to its emitting subsystem and the meaning of the a/b payload words.
enum class SpanKind : std::uint8_t {
  kCallAttempt = 0,        // a = attempt index, b = 1 if hedge
  kCallRetry = 1,          // a = attempt index being scheduled, b = backoff µs
  kCallHedge = 2,          // a = hedge delay µs
  kBreakerTransition = 3,  // a = from state, b = to state (CircuitBreaker)
  kGossipSyncRound = 4,    // a = digest entries sent, b = peer index
  kGossipPoll = 5,         // a = component index
  kCliqueTokenPass = 6,    // a = round, b = view size
  kCliqueElection = 7,     // a = view size, b = 1 if self is leader
  kSchedDispatch = 8,      // a = directive kind, b = client count
  kSchedMigration = 9,     // a = migrations so far
  kForecastMethodSwitch = 10,  // a = previous method index, b = new index
  kCliqueViewChange = 11,  // a = generation, b = view size; tag = member
  kSchedUnitIssued = 12,   // a = unit id; tag = scheduler endpoint
  kSchedUnitReclaimed = 13,  // a = unit id, b = reason; tag = scheduler
  kChaosFault = 14,        // a = FaultKind, b = aux; tag = target host
  kGossipDelta = 15,       // a = blobs carried, b = registrations carried
  kWishJob = 16,           // a = job id, b = JobState; tag = daemon endpoint
  kWishBarrier = 17,       // a = epoch, b = arrivals; tag = barrier name
  kWishCollective = 18,    // a = subtree size, b = fan-out; tag = name
};

[[nodiscard]] const char* span_kind_name(SpanKind k);

/// Reason codes carried in kSchedUnitReclaimed's b word.
namespace reclaim {
inline constexpr std::int64_t kReleased = 0;      // client re-registered
inline constexpr std::int64_t kPresumedDead = 1;  // sweep reclaimed the holder
inline constexpr std::int64_t kMigrated = 2;      // moved to a faster client
}  // namespace reclaim

/// One fixed-size event. `tag` is an interned string id (0 = none) — the
/// dynamic-benchmarking event tag, endpoint, or component name.
struct SpanEvent {
  std::int64_t at = 0;  // caller's clock, µs (TimePoint)
  SpanKind kind = SpanKind::kCallAttempt;
  std::uint32_t tag = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 4096);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Resize the ring; drops recorded events, keeps the intern table.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  /// Intern a tag string; same string → same id for this recorder's
  /// lifetime (until reset()). Id 0 is reserved for "no tag".
  std::uint32_t intern(std::string_view s);
  /// Name for an interned id ("" for 0 or unknown).
  [[nodiscard]] std::string tag_name(std::uint32_t id) const;

  /// Record one span. No-op when disabled. `at` is the caller's clock so
  /// sim-driven components stay deterministic.
  void record(std::int64_t at, SpanKind kind, std::uint32_t tag = 0,
              std::int64_t a = 0, std::int64_t b = 0);

  [[nodiscard]] std::uint64_t total() const;    // recorded since reset
  [[nodiscard]] std::size_t size() const;       // retained in the ring
  [[nodiscard]] std::uint64_t dropped() const;  // evicted = total - size

  /// Retained events, oldest → newest.
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;

  /// {"total":n,"dropped":n,"events":[{"at":..,"kind":"...","tag":"...",
  ///  "a":..,"b":..},...]} — deterministic for identical recorded state.
  [[nodiscard]] std::string to_json() const;

  /// Drop events (total/dropped restart at 0); intern table survives so
  /// cached tag ids stay valid.
  void clear();
  /// clear() plus forget the intern table — invalidates cached tag ids;
  /// use only between independent runs (determinism tests).
  void reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  std::size_t cap_ = 4096;
  std::uint64_t total_ = 0;
  std::vector<std::string> tag_names_;  // id - 1 → name
  std::unordered_map<std::string, std::uint32_t> tag_ids_;
};

/// The process-wide recorder every subsystem emits to.
TraceRecorder& trace();

}  // namespace ew::obs
