// Trace-level invariant checker for chaos runs.
//
// The chaos tests and the dependability bench assert global safety/liveness
// properties that no single subsystem can see locally: a work unit handed to
// a client whose scheduler later crashed must either still be outstanding on
// a live scheduler, or have been re-issued after the restart — never silently
// dropped; clique generations observed by one member must be monotone within
// one incarnation of that member; a circuit breaker that opens must
// eventually probe (leave the open state) instead of staying latched.
//
// The checker replays the obs::TraceRecorder span stream (which the sim
// stamps with virtual time, so the input is bit-identical across replays of
// the same seed) and cross-references chaos faults with scheduler and clique
// spans. It has no coupling to the live objects: tests hand it a snapshot
// plus the set of unit ids that are legitimately still in flight at the end.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ew::obs {

struct InvariantOptions {
  /// Unit ids legitimately outstanding when the trace ends (issued to a
  /// client that is still alive and working). Everything else issued and
  /// never reclaimed must be explained by a crash/restart pair.
  std::set<std::uint64_t> live_units;
  /// A breaker-open within this window of the trace's final span is not a
  /// violation — the run simply ended before the cooldown elapsed.
  std::int64_t breaker_grace_us = 60 * 1000 * 1000;
  /// Likewise, a unit at risk from a crash this close to the end of the
  /// trace is forgiven if the restart never came.
  std::int64_t crash_grace_us = 0;
};

struct InvariantReport {
  std::vector<std::string> violations;

  // Accounting that the dependability bench serializes.
  std::uint64_t units_issued = 0;
  std::uint64_t units_reclaimed = 0;
  std::uint64_t units_reissued_after_crash = 0;
  std::uint64_t units_double_issued = 0;
  std::uint64_t units_lost = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_reprobes = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t chaos_faults = 0;
  std::uint64_t gossip_deltas = 0;
  std::uint64_t gossip_delta_blobs = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Scan `rec`'s retained spans (oldest → newest) and check the three chaos
/// invariants. Requires the ring not to have dropped events mid-run; the
/// chaos tests size the ring accordingly (a dropped!=0 trace adds its own
/// violation since the accounting would be unsound).
[[nodiscard]] InvariantReport check_invariants(const TraceRecorder& rec,
                                               const InvariantOptions& opts);

}  // namespace ew::obs
