// Hierarchical clique sharding (DESIGN.md §12).
//
// The paper's clique protocol partitions into subcliques on failure and
// merges back when conditions permit; here the same machinery is the scaling
// mechanism. A gossip pool of N servers is split into K child cliques; each
// state type has exactly one home clique (consistent/rendezvous hash over
// clique ids), so a child clique anti-entropies only its shard and per-server
// digest bytes stay O(types / K) instead of O(total types). Child-clique
// leaders run a second CliqueMember at offset message types — the parent
// tier — and anti-entropy per-clique rollup summaries, which is how the
// hierarchy notices divergence or imbalance without any server ever holding
// global state.
//
// Sharding is by TYPE, not (component, type): a state object is keyed by its
// message type alone in the StateStore, so both halves of a (component,
// type) split would have to converge on one copy anyway — giving a type two
// home cliques would make its replicas permanently diverge. A component
// registering M types is split across up to M cliques; responsibility for
// polling it *within* a clique is still partitioned per component by
// rendezvous hash over the clique view.
#pragma once

#include <cstdint>
#include <vector>

#include "net/endpoint.hpp"
#include "net/packet.hpp"

namespace ew::gossip {

/// Child clique of the gossip at position i in the (config-shared) pool
/// list: i mod K. Position-based assignment keeps the cliques exactly
/// balanced; a gossip not in the pool list hashes its endpoint instead.
std::uint32_t clique_of_gossip(const Endpoint& self,
                               const std::vector<Endpoint>& pool,
                               std::uint32_t num_cliques);

/// The members of child clique `clique` under the same position rule.
std::vector<Endpoint> clique_members(const std::vector<Endpoint>& pool,
                                     std::uint32_t num_cliques,
                                     std::uint32_t clique);

/// The home clique of a state type: rendezvous hash over clique ids, so
/// growing K moves only ~1/K of the types (consistent hashing).
std::uint32_t home_clique(MsgType type, std::uint32_t num_cliques);

}  // namespace ew::gossip
