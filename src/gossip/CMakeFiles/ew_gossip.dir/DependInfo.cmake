
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gossip/clique.cpp" "src/gossip/CMakeFiles/ew_gossip.dir/clique.cpp.o" "gcc" "src/gossip/CMakeFiles/ew_gossip.dir/clique.cpp.o.d"
  "/root/repo/src/gossip/gossip_server.cpp" "src/gossip/CMakeFiles/ew_gossip.dir/gossip_server.cpp.o" "gcc" "src/gossip/CMakeFiles/ew_gossip.dir/gossip_server.cpp.o.d"
  "/root/repo/src/gossip/hierarchy.cpp" "src/gossip/CMakeFiles/ew_gossip.dir/hierarchy.cpp.o" "gcc" "src/gossip/CMakeFiles/ew_gossip.dir/hierarchy.cpp.o.d"
  "/root/repo/src/gossip/protocol.cpp" "src/gossip/CMakeFiles/ew_gossip.dir/protocol.cpp.o" "gcc" "src/gossip/CMakeFiles/ew_gossip.dir/protocol.cpp.o.d"
  "/root/repo/src/gossip/state.cpp" "src/gossip/CMakeFiles/ew_gossip.dir/state.cpp.o" "gcc" "src/gossip/CMakeFiles/ew_gossip.dir/state.cpp.o.d"
  "/root/repo/src/gossip/sync_client.cpp" "src/gossip/CMakeFiles/ew_gossip.dir/sync_client.cpp.o" "gcc" "src/gossip/CMakeFiles/ew_gossip.dir/sync_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/ew_net.dir/DependInfo.cmake"
  "/root/repo/src/forecast/CMakeFiles/ew_forecast.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ew_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
