file(REMOVE_RECURSE
  "libew_gossip.a"
)
