# Empty dependencies file for ew_gossip.
# This may be replaced when dependencies are built.
