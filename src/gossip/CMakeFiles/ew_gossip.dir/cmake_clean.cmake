file(REMOVE_RECURSE
  "CMakeFiles/ew_gossip.dir/clique.cpp.o"
  "CMakeFiles/ew_gossip.dir/clique.cpp.o.d"
  "CMakeFiles/ew_gossip.dir/gossip_server.cpp.o"
  "CMakeFiles/ew_gossip.dir/gossip_server.cpp.o.d"
  "CMakeFiles/ew_gossip.dir/hierarchy.cpp.o"
  "CMakeFiles/ew_gossip.dir/hierarchy.cpp.o.d"
  "CMakeFiles/ew_gossip.dir/protocol.cpp.o"
  "CMakeFiles/ew_gossip.dir/protocol.cpp.o.d"
  "CMakeFiles/ew_gossip.dir/state.cpp.o"
  "CMakeFiles/ew_gossip.dir/state.cpp.o.d"
  "CMakeFiles/ew_gossip.dir/sync_client.cpp.o"
  "CMakeFiles/ew_gossip.dir/sync_client.cpp.o.d"
  "libew_gossip.a"
  "libew_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
