// Wire protocol for the distributed state exchange service (paper §2.3).
//
// Message-type constants and payload codecs shared by Gossip servers, the
// clique protocol, and application components. Gossip/clique types live in
// the 0x01xx block; application services (scheduler, persistent state,
// logging) use 0x02xx (core/protocol.hpp).
#pragma once

#include <vector>

#include "common/result.hpp"
#include "common/serialize.hpp"
#include "net/endpoint.hpp"
#include "net/packet.hpp"

namespace ew::gossip {

namespace msgtype {
// Component <-> Gossip.
constexpr MsgType kRegister = 0x0101;     // component registers for sync
constexpr MsgType kGetState = 0x0102;     // gossip polls a component
constexpr MsgType kStateUpdate = 0x0103;  // fresher state pushed to a holder
// Gossip <-> Gossip.
constexpr MsgType kDigest = 0x0104;       // anti-entropy exchange
constexpr MsgType kRegForward = 0x0105;   // registration broadcast
// Clique protocol.
constexpr MsgType kToken = 0x0110;
constexpr MsgType kJoin = 0x0111;
constexpr MsgType kProbe = 0x0112;
constexpr MsgType kMerge = 0x0113;
}  // namespace msgtype

/// Endpoint codec helpers used across all protocols.
void write_endpoint(Writer& w, const Endpoint& e);
Result<Endpoint> read_endpoint(Reader& r);

/// A component's registration: its contact address and the state message
/// types it wants synchronized (paper: "register a contact address, a unique
/// message type, and a comparator").
struct Registration {
  Endpoint component;
  std::vector<MsgType> types;

  [[nodiscard]] Bytes serialize() const;
  static Result<Registration> deserialize(const Bytes& data);
};

/// One synchronized state object: its type and opaque content.
struct StateBlob {
  MsgType type = 0;
  Bytes content;
};

void write_state_blob(Writer& w, const StateBlob& s);
Result<StateBlob> read_state_blob(Reader& r);

/// Anti-entropy digest: everything one gossip knows, shipped to a peer.
/// (The paper's prototype did pair-wise comparison of full state; states are
/// small — a counter-example graph is < 600 bytes — so full-content digests
/// match the SC98 implementation and its admitted O(N^2) character.)
struct Digest {
  std::vector<Registration> registrations;
  std::vector<StateBlob> states;

  [[nodiscard]] Bytes serialize() const;
  static Result<Digest> deserialize(const Bytes& data);
};

/// A clique view: generation, leader, sorted member list.
struct View {
  std::uint64_t generation = 0;
  Endpoint leader;
  std::vector<Endpoint> members;  // kept sorted, includes the leader

  [[nodiscard]] bool contains(const Endpoint& e) const;
  /// Total order for adoption: higher generation wins; ties break toward
  /// the lexicographically smaller leader (deterministic convergence).
  [[nodiscard]] bool newer_than(const View& other) const;
  [[nodiscard]] Bytes serialize() const;
  static Result<View> deserialize(const Bytes& data);
  void write(Writer& w) const;
  static Result<View> read(Reader& r);
};

/// The circulating token: the view it asserts, who has seen it this round,
/// and who could not be reached while forwarding it.
struct Token {
  std::uint64_t round = 0;
  View view;
  std::vector<Endpoint> visited;
  std::vector<Endpoint> suspects;

  [[nodiscard]] Bytes serialize() const;
  static Result<Token> deserialize(const Bytes& data);
};

}  // namespace ew::gossip
