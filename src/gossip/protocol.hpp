// Wire protocol for the distributed state exchange service (paper §2.3).
//
// Message-type constants and payload codecs shared by Gossip servers, the
// clique protocol, and application components. Gossip/clique types live in
// the 0x01xx block; application services (scheduler, persistent state,
// logging) use 0x02xx (core/protocol.hpp).
//
// Anti-entropy is versioned-digest/delta, not full-state: a kDigest carries
// one (version, checksum) summary per state type plus a rollup of the
// registration set, and the reply is a Delta holding only the blobs the
// digest sender is provably stale on (plus a want-list for the opposite
// direction, answered with a kDelta push). The paper's prototype shipped
// everything every round and admitted the O(N^2) cost; the versioned scheme
// keeps steady-state exchanges at summary size so the gossip tier scales to
// the 100k-component target (see DESIGN.md §12).
#pragma once

#include <vector>

#include "common/result.hpp"
#include "common/serialize.hpp"
#include "net/endpoint.hpp"
#include "net/packet.hpp"

namespace ew::gossip {

namespace msgtype {
// Component <-> Gossip.
constexpr MsgType kRegister = 0x0101;       // component registers for sync
constexpr MsgType kGetState = 0x0102;       // single-type state query
constexpr MsgType kStateUpdate = 0x0103;    // fresher state pushed to a holder
constexpr MsgType kGetStateBatch = 0x0107;  // batched poll: all types at once
// Gossip <-> Gossip.
constexpr MsgType kDigest = 0x0104;      // versioned-summary anti-entropy
constexpr MsgType kRegForward = 0x0105;  // registration broadcast / routing
constexpr MsgType kDelta = 0x0106;       // push of blobs the peer is stale on
// Clique protocol. The parent (leader) tier runs the same protocol at
// kToken + kParentTierOffset so both tiers can share one Node.
constexpr MsgType kToken = 0x0110;
constexpr MsgType kJoin = 0x0111;
constexpr MsgType kProbe = 0x0112;
constexpr MsgType kMerge = 0x0113;
constexpr MsgType kParentTierOffset = 0x0008;
// Parent tier: leaders anti-entropy their child-clique rollups.
constexpr MsgType kParentDigest = 0x0120;
}  // namespace msgtype

/// Endpoint codec helpers used across all protocols.
void write_endpoint(Writer& w, const Endpoint& e);
Result<Endpoint> read_endpoint(Reader& r);

/// A component's registration: its contact address and the state message
/// types it wants synchronized (paper: "register a contact address, a unique
/// message type, and a comparator").
struct Registration {
  Endpoint component;
  std::vector<MsgType> types;

  [[nodiscard]] Bytes serialize() const;
  static Result<Registration> deserialize(const Bytes& data);
  void write(Writer& w) const;
  static Result<Registration> read(Reader& r);
};

/// One synchronized state object: its type and opaque content.
struct StateBlob {
  MsgType type = 0;
  Bytes content;
};

void write_state_blob(Writer& w, const StateBlob& s);
Result<StateBlob> read_state_blob(Reader& r);

/// Per-type digest line: the stored copy's version stamp (leading u64 by the
/// toolkit convention; 0 when the content has none) and an FNV-1a checksum
/// of the full content. Freshness is decided from the version, checksum ties
/// are broken deterministically, and the registered comparator always has
/// the final word at merge time.
struct TypeSummary {
  MsgType type = 0;
  std::uint64_t version = 0;
  std::uint64_t checksum = 0;
};

void write_type_summary(Writer& w, const TypeSummary& s);
Result<TypeSummary> read_type_summary(Reader& r);

/// Anti-entropy digest: one summary line per state type this gossip's shard
/// holds, plus an order-independent rollup of its registration set. Bytes
/// are O(types in the shard), never O(total state content).
struct Digest {
  std::uint32_t clique = 0;  // sender's child-clique id
  std::vector<TypeSummary> summaries;
  std::uint64_t reg_count = 0;
  std::uint64_t reg_checksum = 0;

  [[nodiscard]] Bytes serialize() const;
  static Result<Digest> deserialize(const Bytes& data);
};

/// Digest reply / standalone push: the blobs the receiver is provably stale
/// on, the types the sender wants back (it was the stale one), and — only on
/// a registration-rollup mismatch — the full registration set.
struct Delta {
  std::uint32_t clique = 0;
  std::vector<StateBlob> blobs;
  std::vector<MsgType> want;
  std::vector<Registration> registrations;

  [[nodiscard]] Bytes serialize() const;
  static Result<Delta> deserialize(const Bytes& data);
};

/// One child clique's rollup, anti-entropied leader-to-leader on the parent
/// tier. `version` is bumped by the owning leader whenever the rollup
/// changes, so parent exchanges converge by the same versioned rules as
/// state blobs.
struct CliqueSummary {
  std::uint32_t clique = 0;
  std::uint64_t version = 0;
  std::uint64_t checksum = 0;
  std::uint64_t states = 0;
  std::uint64_t components = 0;

  void write(Writer& w) const;
  static Result<CliqueSummary> read(Reader& r);
};

/// Parent-tier exchange payload: every rollup the sending leader knows.
/// Bounded by the clique count, not by components or state types.
struct ParentDigest {
  std::vector<CliqueSummary> cliques;

  [[nodiscard]] Bytes serialize() const;
  static Result<ParentDigest> deserialize(const Bytes& data);
};

/// Raw list codecs shared by the poll bodies below (and handy in tests).
Bytes serialize_type_list(const std::vector<MsgType>& types);
Result<std::vector<MsgType>> deserialize_type_list(const Bytes& data);
Bytes serialize_blob_list(const std::vector<StateBlob>& blobs);
Result<std::vector<StateBlob>> deserialize_blob_list(const Bytes& data);

/// kGetStateBatch request: one summary line per polled type carrying the
/// polling gossip's own stored copy's (version, checksum) — zeros when it
/// holds nothing yet. The component compares against its current state and
/// ships content only for types that differ, so steady-state polls cost
/// summary bytes, not state bytes (the component-side digest cache).
struct PollRequest {
  std::vector<TypeSummary> held;

  [[nodiscard]] Bytes serialize() const;
  static Result<PollRequest> deserialize(const Bytes& data);
};

/// kGetStateBatch reply. `fresh` is set exactly when every requested type
/// the component exposes already matched the gossip's summary (a cache hit,
/// counted in `gossip.poll.cache_hits`); `blobs` carries only the types
/// whose content differed.
struct PollReply {
  bool fresh = false;
  std::vector<StateBlob> blobs;

  [[nodiscard]] Bytes serialize() const;
  static Result<PollReply> deserialize(const Bytes& data);
};

/// A clique view: generation, leader, sorted member list.
struct View {
  std::uint64_t generation = 0;
  Endpoint leader;
  std::vector<Endpoint> members;  // kept sorted, includes the leader

  [[nodiscard]] bool contains(const Endpoint& e) const;
  /// Total order for adoption: higher generation wins; ties break toward
  /// the lexicographically smaller leader (deterministic convergence).
  [[nodiscard]] bool newer_than(const View& other) const;
  [[nodiscard]] Bytes serialize() const;
  static Result<View> deserialize(const Bytes& data);
  void write(Writer& w) const;
  static Result<View> read(Reader& r);
};

/// The circulating token: the view it asserts, who has seen it this round,
/// and who could not be reached while forwarding it.
struct Token {
  std::uint64_t round = 0;
  View view;
  std::vector<Endpoint> visited;
  std::vector<Endpoint> suspects;

  [[nodiscard]] Bytes serialize() const;
  static Result<Token> deserialize(const Bytes& data);
};

}  // namespace ew::gossip
