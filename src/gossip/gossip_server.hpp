// The Gossip server: EveryWare's distributed state exchange (paper §2.3).
//
// Each Gossip keeps the freshest copy it has seen of every synchronized
// state object in its shard, polls the application components it is
// responsible for (one batched kGetStateBatch per component, hedged through
// the call layer), and anti-entropies with its clique peers by versioned
// digest: a kDigest carries one (version, checksum) line per type, the reply
// is a Delta holding only the blobs the sender is provably stale on plus a
// want-list answered with a kDelta push. Steady-state exchanges are summary
// sized — O(types in the shard), never O(total state content).
//
// With Options::num_cliques > 1 the pool splits into child cliques, each
// state type homed in exactly one (src/gossip/hierarchy.hpp), and the child
// leaders run a parent-tier CliqueMember (same protocol, offset message
// types) that anti-entropies per-clique rollup summaries. Partition and
// merge inside a child clique reuse the existing View/Token machinery
// untouched; responsibility rebalances on every view change.
#pragma once

#include <map>
#include <memory>

#include "common/hash.hpp"
#include "gossip/clique.hpp"
#include "gossip/hierarchy.hpp"
#include "gossip/state.hpp"
#include "net/node.hpp"

namespace ew::gossip {

class GossipServer {
 public:
  struct Options {
    Duration poll_period = 10 * kSecond;       // component polling cadence
    Duration peer_sync_period = 20 * kSecond;  // clique anti-entropy cadence
    Duration lease = 5 * kMinute;              // registration lifetime
    int drop_after_misses = 5;                 // consecutive poll failures
    // Hierarchy: number of child cliques the well-known pool splits into.
    // 1 = flat (single clique, no parent tier), preserving single-shard
    // behavior bit-for-bit for the chaos replay tests.
    std::uint32_t num_cliques = 1;
    Duration parent_sync_period = 20 * kSecond;  // leader rollup exchange
    CliqueMember::Options clique;
  };

  GossipServer(Node& node, const ComparatorRegistry& comparators,
               std::vector<Endpoint> well_known_gossips, Options opts);
  GossipServer(Node& node, const ComparatorRegistry& comparators,
               std::vector<Endpoint> well_known_gossips)
      : GossipServer(node, comparators, std::move(well_known_gossips), Options{}) {}

  void start();
  void stop();

  [[nodiscard]] const StateStore& store() const { return store_; }
  [[nodiscard]] StateStore& store() { return store_; }
  [[nodiscard]] CliqueMember& clique() { return clique_; }
  [[nodiscard]] const CliqueMember& clique() const { return clique_; }

  /// Hierarchy introspection.
  [[nodiscard]] std::uint32_t clique_id() const { return clique_id_; }
  [[nodiscard]] std::uint32_t num_cliques() const { return opts_.num_cliques; }
  /// True if this server's child clique is the home of `type`.
  [[nodiscard]] bool owns_type(MsgType type) const {
    return home_clique(type, opts_.num_cliques) == clique_id_;
  }
  /// The parent-tier member (null when num_cliques == 1).
  [[nodiscard]] CliqueMember* parent() { return parent_.get(); }
  /// Every child-clique rollup this server has heard of, keyed by clique id.
  [[nodiscard]] const std::map<std::uint32_t, CliqueSummary>& rollups() const {
    return rollups_;
  }

  [[nodiscard]] std::size_t registered_components() const { return registry_.size(); }
  /// True if `component` currently holds a (possibly sliced) registration here.
  [[nodiscard]] bool has_registration(const Endpoint& component) const {
    return registry_.count(component) != 0;
  }
  /// True if this gossip (given the current clique view) polls `component`.
  [[nodiscard]] bool responsible_for(const Endpoint& component) const;

  /// Diagnostics for tests and the dependability bench.
  [[nodiscard]] std::uint64_t polls_sent() const { return polls_sent_; }
  [[nodiscard]] std::uint64_t updates_pushed() const { return updates_pushed_; }
  [[nodiscard]] std::uint64_t states_absorbed() const { return states_absorbed_; }
  [[nodiscard]] std::uint64_t merges(MergeOutcome o) const {
    return merge_counts_[static_cast<std::size_t>(o)];
  }
  [[nodiscard]] std::uint64_t delta_blobs_sent() const { return delta_blobs_sent_; }
  /// Largest digest payload (bytes) this server has sent or received —
  /// the bench's boundedness gate reads this.
  [[nodiscard]] std::uint64_t digest_bytes_max() const { return digest_bytes_max_; }
  /// Sync rounds the last convergence took (0 until one completes).
  [[nodiscard]] std::uint64_t last_convergence_rounds() const {
    return last_convergence_rounds_;
  }

 private:
  struct Entry {
    Registration reg;
    TimePoint lease_expiry = 0;
    int misses = 0;
  };

  void on_register(const IncomingMessage& msg, const Responder& resp);
  void on_reg_forward(const IncomingMessage& msg, const Responder& resp);
  void on_digest(const IncomingMessage& msg, const Responder& resp);
  void on_delta(const IncomingMessage& msg, const Responder& resp);
  void on_parent_digest(const IncomingMessage& msg, const Responder& resp);
  void poll_tick();
  void peer_sync_tick();
  void parent_sync_tick();
  void poll_component(const Endpoint& component, const std::vector<MsgType>& types);
  MergeOutcome absorb(const StateBlob& blob);
  /// Admit the slice of `reg` homed in this clique; false if none is.
  bool admit(const Registration& reg);
  void mark_dirty();
  void note_clean_exchange();
  void record_digest_bytes(std::size_t bytes);
  void push_delta(const Endpoint& peer, const std::vector<MsgType>& want,
                  bool include_regs);
  void update_parent_membership();
  void refresh_my_rollup();
  void merge_rollups(const ParentDigest& d);
  [[nodiscard]] Digest make_digest() const;
  [[nodiscard]] std::uint64_t reg_rollup_checksum() const;
  [[nodiscard]] std::string clique_label() const;

  Node& node_;
  std::vector<Endpoint> well_known_;  // the full gossip pool
  Options opts_;
  std::uint32_t clique_id_ = 0;
  std::vector<Endpoint> clique_pool_;  // my child clique's slice of the pool
  CliqueMember clique_;
  std::unique_ptr<CliqueMember> parent_;  // leaders-only tier (hierarchical)
  StateStore store_;
  // std::map (not unordered_map): iteration order feeds the sim event
  // sequence and the registration exchange, both of which must replay
  // bit-identically.
  std::map<Endpoint, Entry> registry_;
  std::map<std::uint32_t, CliqueSummary> rollups_;
  bool running_ = false;
  bool parent_running_ = false;
  bool dirty_ = true;  // converged only once an exchange proves it
  std::uint64_t sync_rounds_dirty_ = 0;
  std::uint64_t last_convergence_rounds_ = 0;
  std::size_t peer_index_ = 0;
  std::size_t parent_peer_index_ = 0;
  std::uint64_t polls_sent_ = 0;
  std::uint64_t updates_pushed_ = 0;
  std::uint64_t states_absorbed_ = 0;
  std::uint64_t merge_counts_[5] = {0, 0, 0, 0, 0};
  std::uint64_t delta_blobs_sent_ = 0;
  std::uint64_t digest_bytes_max_ = 0;
  TimerId poll_timer_ = kInvalidTimer;
  TimerId sync_timer_ = kInvalidTimer;
  TimerId parent_timer_ = kInvalidTimer;
};

}  // namespace ew::gossip
