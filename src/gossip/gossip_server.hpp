// The Gossip server: EveryWare's distributed state exchange (paper §2.3).
//
// Each Gossip keeps the freshest copy it has seen of every synchronized
// state object, polls the application components it is responsible for,
// compares their copies with its own using the registered freshness
// comparators, pushes updates to holders of stale copies, and anti-entropies
// with its clique peers. Responsibility for components is partitioned across
// the clique by rendezvous hashing and rebalances automatically whenever the
// clique view changes (gossip failure, partition, merge).
#pragma once

#include <unordered_map>

#include "common/hash.hpp"
#include "gossip/clique.hpp"
#include "gossip/state.hpp"
#include "net/node.hpp"

namespace ew::gossip {

class GossipServer {
 public:
  struct Options {
    Duration poll_period = 10 * kSecond;       // component polling cadence
    Duration peer_sync_period = 20 * kSecond;  // clique anti-entropy cadence
    Duration lease = 5 * kMinute;              // registration lifetime
    int drop_after_misses = 5;                 // consecutive poll failures
    CliqueMember::Options clique;
  };

  GossipServer(Node& node, const ComparatorRegistry& comparators,
               std::vector<Endpoint> well_known_gossips, Options opts);
  GossipServer(Node& node, const ComparatorRegistry& comparators,
               std::vector<Endpoint> well_known_gossips)
      : GossipServer(node, comparators, std::move(well_known_gossips), Options{}) {}

  void start();
  void stop();

  [[nodiscard]] const StateStore& store() const { return store_; }
  [[nodiscard]] StateStore& store() { return store_; }
  [[nodiscard]] CliqueMember& clique() { return clique_; }
  [[nodiscard]] const CliqueMember& clique() const { return clique_; }

  [[nodiscard]] std::size_t registered_components() const { return registry_.size(); }
  /// True if this gossip (given the current clique view) polls `component`.
  [[nodiscard]] bool responsible_for(const Endpoint& component) const;

  /// Diagnostics for tests and the dependability bench.
  [[nodiscard]] std::uint64_t polls_sent() const { return polls_sent_; }
  [[nodiscard]] std::uint64_t updates_pushed() const { return updates_pushed_; }
  [[nodiscard]] std::uint64_t states_absorbed() const { return states_absorbed_; }

 private:
  struct Entry {
    Registration reg;
    TimePoint lease_expiry = 0;
    int misses = 0;
  };

  void on_register(const IncomingMessage& msg, const Responder& resp);
  void on_reg_forward(const IncomingMessage& msg, const Responder& resp);
  void on_digest(const IncomingMessage& msg, const Responder& resp);
  void poll_tick();
  void peer_sync_tick();
  void poll_component(const Endpoint& component, MsgType type);
  void absorb(const StateBlob& blob);
  void admit(const Registration& reg);
  [[nodiscard]] Digest make_digest() const;

  Node& node_;
  std::vector<Endpoint> well_known_;
  Options opts_;
  CliqueMember clique_;
  StateStore store_;
  std::unordered_map<Endpoint, Entry, EndpointHash> registry_;
  bool running_ = false;
  std::size_t peer_index_ = 0;
  std::uint64_t polls_sent_ = 0;
  std::uint64_t updates_pushed_ = 0;
  std::uint64_t states_absorbed_ = 0;
  TimerId poll_timer_ = kInvalidTimer;
  TimerId sync_timer_ = kInvalidTimer;
};

}  // namespace ew::gossip
