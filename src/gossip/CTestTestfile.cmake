# CMake generated Testfile for 
# Source directory: /root/repo/src/gossip
# Build directory: /root/repo/src/gossip
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
