#include "gossip/gossip_server.hpp"

#include <algorithm>
#include <string_view>

#include "common/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ew::gossip {

namespace {
const char* merge_counter_name(MergeOutcome o) {
  switch (o) {
    case MergeOutcome::kNew: return obs::names::kGossipMergeNew;
    case MergeOutcome::kFresher: return obs::names::kGossipMergeFresher;
    case MergeOutcome::kEqual: return obs::names::kGossipMergeEqual;
    case MergeOutcome::kStale: return obs::names::kGossipMergeStale;
    case MergeOutcome::kMerged: return obs::names::kGossipMergeMerged;
  }
  return obs::names::kGossipMergeEqual;
}

void sort_types(std::vector<MsgType>& types) {
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());
}
}  // namespace

GossipServer::GossipServer(Node& node, const ComparatorRegistry& comparators,
                           std::vector<Endpoint> well_known_gossips,
                           Options opts)
    : node_(node),
      well_known_(std::move(well_known_gossips)),
      opts_(opts),
      clique_id_(clique_of_gossip(node.self(), well_known_, opts.num_cliques)),
      clique_pool_(clique_members(well_known_, opts.num_cliques, clique_id_)),
      clique_(node, clique_pool_, opts.clique),
      store_(comparators) {
  if (opts_.num_cliques > 1) {
    CliqueMember::Options po = opts_.clique;
    po.msg_base =
        static_cast<MsgType>(msgtype::kToken + msgtype::kParentTierOffset);
    // The parent tier probes the whole pool: leaders change, so there is no
    // stable leaders-only address list. Non-leaders' parent members are
    // stopped and refuse the traffic, so only current leaders stay in the
    // parent view.
    parent_ = std::make_unique<CliqueMember>(node_, well_known_, po);
  }
}

void GossipServer::start() {
  if (running_) return;
  running_ = true;
  // A Gossip fans out to every registered component each poll period; a
  // dead component would otherwise cost a full time-out per batch per tick.
  // The breaker sheds those polls fast and probes for recovery, and a shed
  // poll counts as a miss below just like a timed-out one.
  node_.call_policy().set_breaker_enabled(true);
  node_.handle(msgtype::kRegister, [this](const IncomingMessage& m, Responder r) {
    on_register(m, r);
  });
  node_.handle(msgtype::kRegForward,
               [this](const IncomingMessage& m, Responder r) { on_reg_forward(m, r); });
  node_.handle(msgtype::kDigest, [this](const IncomingMessage& m, Responder r) {
    on_digest(m, r);
  });
  node_.handle(msgtype::kDelta, [this](const IncomingMessage& m, Responder r) {
    on_delta(m, r);
  });
  if (parent_) {
    node_.handle(msgtype::kParentDigest,
                 [this](const IncomingMessage& m, Responder r) {
                   on_parent_digest(m, r);
                 });
    clique_.on_view_change([this](const View&) { update_parent_membership(); });
  }
  clique_.start();
  poll_timer_ = node_.executor().schedule(opts_.poll_period, [this] { poll_tick(); });
  sync_timer_ =
      node_.executor().schedule(opts_.peer_sync_period, [this] { peer_sync_tick(); });
  if (parent_) {
    parent_timer_ = node_.executor().schedule(opts_.parent_sync_period,
                                              [this] { parent_sync_tick(); });
  }
}

void GossipServer::stop() {
  if (!running_) return;
  running_ = false;
  if (parent_ && parent_running_) {
    parent_running_ = false;
    parent_->stop();
  }
  clique_.stop();
  node_.executor().cancel(poll_timer_);
  node_.executor().cancel(sync_timer_);
  node_.executor().cancel(parent_timer_);
}

void GossipServer::update_parent_membership() {
  if (!parent_ || !running_) return;
  const bool lead = clique_.is_leader();
  if (lead && !parent_running_) {
    parent_running_ = true;
    parent_->start();
  } else if (!lead && parent_running_) {
    parent_running_ = false;
    parent_->stop();
  }
}

bool GossipServer::responsible_for(const Endpoint& component) const {
  const auto& members = clique_.view().members;
  if (members.empty()) return true;
  const std::string item = component.to_string();
  const Endpoint* best = nullptr;
  std::uint64_t best_w = 0;
  for (const auto& m : members) {
    const std::uint64_t w = rendezvous_weight(m.to_string(), item);
    if (best == nullptr || w > best_w || (w == best_w && m < *best)) {
      best = &m;
      best_w = w;
    }
  }
  return best != nullptr && *best == node_.self();
}

std::string GossipServer::clique_label() const {
  return "clique=" + std::to_string(clique_id_);
}

void GossipServer::mark_dirty() {
  if (!dirty_) {
    dirty_ = true;
    sync_rounds_dirty_ = 0;
  }
}

void GossipServer::note_clean_exchange() {
  if (!dirty_) return;
  dirty_ = false;
  last_convergence_rounds_ = sync_rounds_dirty_;
  obs::registry().histogram(obs::names::kGossipConvergenceRounds)
      .record(sync_rounds_dirty_);
  if (opts_.num_cliques > 1) {
    obs::registry()
        .histogram(obs::names::kGossipConvergenceRounds, clique_label())
        .record(sync_rounds_dirty_);
  }
  sync_rounds_dirty_ = 0;
}

void GossipServer::record_digest_bytes(std::size_t bytes) {
  digest_bytes_max_ = std::max<std::uint64_t>(digest_bytes_max_, bytes);
  obs::registry().histogram(obs::names::kGossipDigestBytes).record(bytes);
  if (opts_.num_cliques > 1) {
    obs::registry()
        .histogram(obs::names::kGossipDigestBytes, clique_label())
        .record(bytes);
  }
}

bool GossipServer::admit(const Registration& reg) {
  Registration mine;
  mine.component = reg.component;
  for (MsgType t : reg.types) {
    if (owns_type(t)) mine.types.push_back(t);
  }
  sort_types(mine.types);
  if (mine.types.empty()) return false;
  auto& entry = registry_[mine.component];
  const bool changed = entry.reg.types != mine.types;
  entry.reg = std::move(mine);
  entry.lease_expiry = node_.executor().now() + opts_.lease;
  entry.misses = 0;
  if (changed) mark_dirty();
  return true;
}

void GossipServer::on_register(const IncomingMessage& msg, const Responder& resp) {
  auto reg = Registration::deserialize(msg.packet.payload);
  if (!reg) {
    resp.fail(Err::kProtocol, reg.error().message);
    return;
  }
  resp.ok();
  // Route each type to its home clique: the slice we own is admitted and
  // broadcast inside our clique; foreign slices forward to every member of
  // their home clique (volatile-but-replicated state, §2.3).
  std::map<std::uint32_t, Registration> split;
  for (MsgType t : reg->types) {
    auto& sub = split[home_clique(t, opts_.num_cliques)];
    sub.component = reg->component;
    sub.types.push_back(t);
  }
  for (auto& [k, sub] : split) {
    sort_types(sub.types);
    if (k == clique_id_) {
      admit(sub);
      for (const auto& peer : clique_.view().members) {
        if (peer == node_.self()) continue;
        node_.send_oneway(peer, msgtype::kRegForward, sub.serialize());
      }
    } else {
      for (const auto& peer : clique_members(well_known_, opts_.num_cliques, k)) {
        if (peer == node_.self()) continue;
        node_.send_oneway(peer, msgtype::kRegForward, sub.serialize());
      }
    }
  }
}

void GossipServer::on_reg_forward(const IncomingMessage& msg, const Responder& resp) {
  auto reg = Registration::deserialize(msg.packet.payload);
  if (!reg) {
    resp.fail(Err::kProtocol, reg.error().message);
    return;
  }
  admit(*reg);
  resp.ok();
}

std::uint64_t GossipServer::reg_rollup_checksum() const {
  // XOR of per-registration hashes: order-independent, and any admitted,
  // dropped, or re-typed registration flips the rollup.
  std::uint64_t acc = 0;
  for (const auto& [ep, entry] : registry_) {
    const Bytes wire = entry.reg.serialize();
    acc ^= fnv1a64(std::string_view(reinterpret_cast<const char*>(wire.data()),
                                    wire.size()));
  }
  return acc;
}

Digest GossipServer::make_digest() const {
  Digest d;
  d.clique = clique_id_;
  d.summaries = store_.summary();
  d.reg_count = registry_.size();
  d.reg_checksum = reg_rollup_checksum();
  return d;
}

MergeOutcome GossipServer::absorb(const StateBlob& blob) {
  const MergeOutcome o = store_.merge(blob);
  ++merge_counts_[static_cast<std::size_t>(o)];
  obs::registry().counter(merge_counter_name(o)).inc();
  if (opts_.num_cliques > 1) {
    obs::registry().counter(merge_counter_name(o), clique_label()).inc();
  }
  if (merge_accepted(o)) {
    ++states_absorbed_;
    obs::registry().counter(obs::names::kGossipStatesAbsorbed).inc();
    mark_dirty();
  }
  return o;
}

void GossipServer::on_digest(const IncomingMessage& msg, const Responder& resp) {
  auto digest = Digest::deserialize(msg.packet.payload);
  if (!digest) {
    resp.fail(Err::kProtocol, digest.error().message);
    return;
  }
  record_digest_bytes(msg.packet.payload.size());
  Delta reply;
  reply.clique = clique_id_;
  reply.blobs = store_.blobs_fresher_than(digest->summaries);
  reply.want = store_.types_stale_against(digest->summaries);
  if (digest->reg_count != registry_.size() ||
      digest->reg_checksum != reg_rollup_checksum()) {
    for (const auto& [ep, entry] : registry_) {
      reply.registrations.push_back(entry.reg);  // std::map → sorted, deterministic
    }
  }
  if (reply.blobs.empty() && reply.want.empty() && reply.registrations.empty()) {
    note_clean_exchange();
  }
  if (!reply.blobs.empty()) {
    delta_blobs_sent_ += reply.blobs.size();
    obs::registry().counter(obs::names::kGossipDeltaBlobs).inc(reply.blobs.size());
    if (opts_.num_cliques > 1) {
      obs::registry()
          .counter(obs::names::kGossipDeltaBlobs, clique_label())
          .inc(reply.blobs.size());
    }
  }
  resp.ok(reply.serialize());
}

void GossipServer::on_delta(const IncomingMessage& msg, const Responder& resp) {
  auto delta = Delta::deserialize(msg.packet.payload);
  if (!delta) {
    resp.fail(Err::kProtocol, delta.error().message);
    return;
  }
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kGossipDelta,
                        obs::trace().intern(node_.self().to_string()),
                        static_cast<std::int64_t>(delta->blobs.size()),
                        static_cast<std::int64_t>(delta->registrations.size()));
  }
  for (const auto& reg : delta->registrations) admit(reg);
  for (const auto& b : delta->blobs) absorb(b);
  resp.ok();
}

void GossipServer::push_delta(const Endpoint& peer,
                              const std::vector<MsgType>& want,
                              bool include_regs) {
  Delta d;
  d.clique = clique_id_;
  for (MsgType t : want) {
    if (auto b = store_.get(t)) d.blobs.push_back(std::move(*b));
  }
  if (include_regs) {
    for (const auto& [ep, entry] : registry_) d.registrations.push_back(entry.reg);
  }
  if (d.blobs.empty() && d.registrations.empty()) return;
  delta_blobs_sent_ += d.blobs.size();
  obs::registry().counter(obs::names::kGossipDeltaBlobs).inc(d.blobs.size());
  if (opts_.num_cliques > 1) {
    obs::registry()
        .counter(obs::names::kGossipDeltaBlobs, clique_label())
        .inc(d.blobs.size());
  }
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kGossipDelta,
                        obs::trace().intern(peer.to_string()),
                        static_cast<std::int64_t>(d.blobs.size()),
                        static_cast<std::int64_t>(d.registrations.size()));
  }
  // A delta push is an idempotent merge at the receiver; retries are safe.
  CallOptions opts;
  opts.retry = RetryPolicy::standard(2);
  opts.trace_tag = "gossip.delta";
  node_.call(peer, msgtype::kDelta, d.serialize(), std::move(opts),
             [](Result<Bytes>) {});
}

void GossipServer::poll_tick() {
  if (!running_) return;
  const TimePoint now = node_.executor().now();
  // Purge expired leases and hopeless components.
  for (auto it = registry_.begin(); it != registry_.end();) {
    if (it->second.lease_expiry < now || it->second.misses >= opts_.drop_after_misses) {
      it = registry_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [ep, entry] : registry_) {
    if (!responsible_for(ep)) continue;
    poll_component(ep, entry.reg.types);
  }
  poll_timer_ = node_.executor().schedule(opts_.poll_period, [this] { poll_tick(); });
}

void GossipServer::poll_component(const Endpoint& component,
                                  const std::vector<MsgType>& types) {
  ++polls_sent_;
  obs::registry().counter(obs::names::kGossipPolls).inc();
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kGossipPoll,
                        obs::trace().intern(component.to_string()),
                        static_cast<std::int64_t>(types.size()));
  }
  // One batched poll per component instead of one call per type, carrying
  // our stored (version, checksum) per type so an unchanged component can
  // answer "fresh" without shipping content (the digest cache). Polls are
  // read-only: retry freely, and hedge once the tag has RTT history so one
  // slow component doesn't stall the whole poll round.
  PollRequest req;
  req.held.reserve(types.size());
  for (MsgType type : types) req.held.push_back(store_.summary_of(type));
  CallOptions poll;
  poll.retry = RetryPolicy::standard(2);
  poll.hedge = HedgePolicy::at(0.95);
  poll.trace_tag = "gossip.poll";
  node_.call(
      component, msgtype::kGetStateBatch, req.serialize(),
      std::move(poll), [this, component](Result<Bytes> r) {
        if (!running_) return;
        auto it = registry_.find(component);
        if (!r.ok()) {
          // Transport-level failure (including a breaker shed): the
          // component may be gone. Application rejections don't count.
          if (err_retryable(r.code())) {
            if (it != registry_.end()) ++it->second.misses;
          }
          return;
        }
        if (it != registry_.end()) it->second.misses = 0;
        auto reply = PollReply::deserialize(*r);
        if (!reply) return;
        // A fresh reply proved every exposed type matched: nothing to
        // absorb, nothing to push back.
        if (reply->fresh) return;
        for (const auto& theirs : reply->blobs) {
          if (!merge_sender_stale(absorb(theirs))) continue;
          // The component is out of date (kStale, or kMerged: its copy was
          // missing facts the union now holds): push our fresher copy ("the
          // Gossip sends a fresh state update to the application component
          // that originated the out-of-date message").
          auto fresh = store_.get(theirs.type);
          if (!fresh) continue;
          Writer upd;
          write_state_blob(upd, *fresh);
          ++updates_pushed_;
          obs::registry().counter(obs::names::kGossipUpdatesPushed).inc();
          // Updates carry versioned blobs, so duplicates are no-ops at the
          // receiver and a retry is safe.
          CallOptions push;
          push.retry = RetryPolicy::standard(2);
          push.trace_tag = "gossip.push";
          node_.call(component, msgtype::kStateUpdate, upd.take(),
                     std::move(push), [](Result<Bytes>) {});
        }
      });
}

void GossipServer::peer_sync_tick() {
  if (!running_) return;
  if (dirty_) ++sync_rounds_dirty_;
  const auto& members = clique_.view().members;
  std::vector<Endpoint> peers;
  for (const auto& m : members) {
    if (m != node_.self()) peers.push_back(m);
  }
  if (!peers.empty()) {
    const Endpoint peer = peers[peer_index_++ % peers.size()];
    obs::registry().counter(obs::names::kGossipSyncRounds).inc();
    const Digest digest = make_digest();
    Bytes wire = digest.serialize();
    record_digest_bytes(wire.size());
    if (obs::trace().enabled()) {
      obs::trace().record(node_.executor().now(),
                          obs::SpanKind::kGossipSyncRound,
                          obs::trace().intern(peer.to_string()),
                          static_cast<std::int64_t>(digest.summaries.size()),
                          static_cast<std::int64_t>((peer_index_ - 1) %
                                                    peers.size()));
    }
    // Digest exchange is an idempotent anti-entropy merge; the next tick
    // rotates to another peer anyway, so two attempts suffice.
    CallOptions opts;
    opts.retry = RetryPolicy::standard(2);
    opts.trace_tag = "gossip.digest";
    node_.call(peer, msgtype::kDigest, std::move(wire), std::move(opts),
               [this, peer](Result<Bytes> r) {
                 if (!running_ || !r.ok()) return;
                 auto delta = Delta::deserialize(*r);
                 if (!delta) return;
                 const bool reg_mismatch = !delta->registrations.empty();
                 for (const auto& reg : delta->registrations) admit(reg);
                 for (const auto& b : delta->blobs) absorb(b);
                 if (!delta->want.empty() || reg_mismatch) {
                   push_delta(peer, delta->want, reg_mismatch);
                 }
                 if (delta->blobs.empty() && delta->want.empty() &&
                     !reg_mismatch) {
                   note_clean_exchange();
                 }
               });
  }
  sync_timer_ =
      node_.executor().schedule(opts_.peer_sync_period, [this] { peer_sync_tick(); });
}

void GossipServer::refresh_my_rollup() {
  CliqueSummary me;
  me.clique = clique_id_;
  me.checksum = store_.rollup_checksum() ^ reg_rollup_checksum();
  me.states = store_.size();
  me.components = registry_.size();
  auto it = rollups_.find(clique_id_);
  if (it == rollups_.end()) {
    me.version = 1;
    rollups_.emplace(clique_id_, me);
  } else if (it->second.checksum != me.checksum ||
             it->second.states != me.states ||
             it->second.components != me.components) {
    me.version = it->second.version + 1;
    it->second = me;
  }
}

void GossipServer::merge_rollups(const ParentDigest& d) {
  for (const auto& c : d.cliques) {
    auto it = rollups_.find(c.clique);
    if (it == rollups_.end()) {
      rollups_.emplace(c.clique, c);
    } else if (c.version > it->second.version ||
               (c.version == it->second.version &&
                c.checksum > it->second.checksum)) {
      it->second = c;
    }
  }
}

void GossipServer::on_parent_digest(const IncomingMessage& msg,
                                    const Responder& resp) {
  if (!parent_ || !parent_running_) {
    resp.fail(Err::kRejected, "not a clique leader");
    return;
  }
  auto digest = ParentDigest::deserialize(msg.packet.payload);
  if (!digest) {
    resp.fail(Err::kProtocol, digest.error().message);
    return;
  }
  merge_rollups(*digest);
  refresh_my_rollup();
  ParentDigest reply;
  for (const auto& [k, sum] : rollups_) reply.cliques.push_back(sum);
  resp.ok(reply.serialize());
}

void GossipServer::parent_sync_tick() {
  if (!running_) return;
  if (parent_ && parent_running_) {
    refresh_my_rollup();
    std::vector<Endpoint> peers;
    for (const auto& m : parent_->view().members) {
      if (m != node_.self()) peers.push_back(m);
    }
    if (!peers.empty()) {
      const Endpoint peer = peers[parent_peer_index_++ % peers.size()];
      ParentDigest pd;
      for (const auto& [k, sum] : rollups_) pd.cliques.push_back(sum);
      CallOptions opts;
      opts.retry = RetryPolicy::standard(2);
      opts.trace_tag = "gossip.parent";
      node_.call(peer, msgtype::kParentDigest, pd.serialize(), std::move(opts),
                 [this](Result<Bytes> r) {
                   if (!running_ || !r.ok()) return;
                   auto reply = ParentDigest::deserialize(*r);
                   if (reply) merge_rollups(*reply);
                 });
    }
  }
  parent_timer_ = node_.executor().schedule(opts_.parent_sync_period,
                                            [this] { parent_sync_tick(); });
}

}  // namespace ew::gossip
