#include "gossip/gossip_server.hpp"

#include "common/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ew::gossip {

GossipServer::GossipServer(Node& node, const ComparatorRegistry& comparators,
                           std::vector<Endpoint> well_known_gossips,
                           Options opts)
    : node_(node),
      well_known_(std::move(well_known_gossips)),
      opts_(opts),
      clique_(node, well_known_, opts.clique),
      store_(comparators) {}

void GossipServer::start() {
  if (running_) return;
  running_ = true;
  // A Gossip fans out to every registered component each poll period; a
  // dead component would otherwise cost a full time-out per type per tick.
  // The breaker sheds those polls fast and probes for recovery, and a shed
  // poll counts as a miss below just like a timed-out one.
  node_.call_policy().set_breaker_enabled(true);
  node_.handle(msgtype::kRegister, [this](const IncomingMessage& m, Responder r) {
    on_register(m, r);
  });
  node_.handle(msgtype::kRegForward,
               [this](const IncomingMessage& m, Responder r) { on_reg_forward(m, r); });
  node_.handle(msgtype::kDigest, [this](const IncomingMessage& m, Responder r) {
    on_digest(m, r);
  });
  clique_.start();
  poll_timer_ = node_.executor().schedule(opts_.poll_period, [this] { poll_tick(); });
  sync_timer_ =
      node_.executor().schedule(opts_.peer_sync_period, [this] { peer_sync_tick(); });
}

void GossipServer::stop() {
  if (!running_) return;
  running_ = false;
  clique_.stop();
  node_.executor().cancel(poll_timer_);
  node_.executor().cancel(sync_timer_);
}

bool GossipServer::responsible_for(const Endpoint& component) const {
  const auto& members = clique_.view().members;
  if (members.empty()) return true;
  const std::string item = component.to_string();
  const Endpoint* best = nullptr;
  std::uint64_t best_w = 0;
  for (const auto& m : members) {
    const std::uint64_t w = rendezvous_weight(m.to_string(), item);
    if (best == nullptr || w > best_w || (w == best_w && m < *best)) {
      best = &m;
      best_w = w;
    }
  }
  return best != nullptr && *best == node_.self();
}

void GossipServer::admit(const Registration& reg) {
  auto& entry = registry_[reg.component];
  entry.reg = reg;
  entry.lease_expiry = node_.executor().now() + opts_.lease;
  entry.misses = 0;
}

void GossipServer::on_register(const IncomingMessage& msg, const Responder& resp) {
  auto reg = Registration::deserialize(msg.packet.payload);
  if (!reg) {
    resp.fail(Err::kProtocol, reg.error().message);
    return;
  }
  admit(*reg);
  resp.ok();
  // Let the rest of the clique know (volatile-but-replicated state).
  for (const auto& peer : clique_.view().members) {
    if (peer == node_.self()) continue;
    node_.send_oneway(peer, msgtype::kRegForward, reg->serialize());
  }
}

void GossipServer::on_reg_forward(const IncomingMessage& msg, const Responder& resp) {
  auto reg = Registration::deserialize(msg.packet.payload);
  if (!reg) {
    resp.fail(Err::kProtocol, reg.error().message);
    return;
  }
  admit(*reg);
  resp.ok();
}

Digest GossipServer::make_digest() const {
  Digest d;
  d.registrations.reserve(registry_.size());
  for (const auto& [ep, entry] : registry_) d.registrations.push_back(entry.reg);
  d.states = store_.all();
  return d;
}

void GossipServer::absorb(const StateBlob& blob) {
  if (store_.merge(blob)) {
    ++states_absorbed_;
    obs::registry().counter(obs::names::kGossipStatesAbsorbed).inc();
  }
}

void GossipServer::on_digest(const IncomingMessage& msg, const Responder& resp) {
  auto digest = Digest::deserialize(msg.packet.payload);
  if (!digest) {
    resp.fail(Err::kProtocol, digest.error().message);
    return;
  }
  for (const auto& reg : digest->registrations) {
    if (!registry_.contains(reg.component)) admit(reg);
  }
  for (const auto& s : digest->states) absorb(s);
  resp.ok(make_digest().serialize());
}

void GossipServer::poll_tick() {
  if (!running_) return;
  const TimePoint now = node_.executor().now();
  // Purge expired leases and hopeless components.
  for (auto it = registry_.begin(); it != registry_.end();) {
    if (it->second.lease_expiry < now || it->second.misses >= opts_.drop_after_misses) {
      it = registry_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [ep, entry] : registry_) {
    if (!responsible_for(ep)) continue;
    for (MsgType type : entry.reg.types) poll_component(ep, type);
  }
  poll_timer_ = node_.executor().schedule(opts_.poll_period, [this] { poll_tick(); });
}

void GossipServer::poll_component(const Endpoint& component, MsgType type) {
  Writer w;
  w.u16(type);
  ++polls_sent_;
  obs::registry().counter(obs::names::kGossipPolls).inc();
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kGossipPoll,
                        obs::trace().intern(component.to_string()), type);
  }
  // State polls are read-only: retry freely, and hedge once the tag has RTT
  // history so one slow component doesn't stall the whole poll round.
  CallOptions poll;
  poll.retry = RetryPolicy::standard(2);
  poll.hedge = HedgePolicy::at(0.95);
  poll.trace_tag = "gossip.poll";
  node_.call(
      component, msgtype::kGetState, w.take(), std::move(poll),
      [this, component, type](Result<Bytes> r) {
        if (!running_) return;
        auto it = registry_.find(component);
        if (!r.ok()) {
          // Transport-level failure (including a breaker shed): the
          // component may be gone. Application rejections don't count.
          if (err_retryable(r.code())) {
            if (it != registry_.end()) ++it->second.misses;
          }
          return;
        }
        if (it != registry_.end()) it->second.misses = 0;
        const Bytes& theirs = *r;
        const int cmp = store_.compare_with_stored(type, theirs);
        if (cmp > 0) {
          absorb(StateBlob{type, theirs});
        } else if (cmp < 0) {
          // The component is out of date: push our fresher copy
          // ("the Gossip sends a fresh state update to the application
          // component that originated the out-of-date message").
          auto fresh = store_.get(type);
          if (!fresh) return;
          Writer upd;
          write_state_blob(upd, *fresh);
          ++updates_pushed_;
          obs::registry().counter(obs::names::kGossipUpdatesPushed).inc();
          // Updates carry versioned blobs, so duplicates are no-ops at the
          // receiver and a retry is safe.
          CallOptions push;
          push.retry = RetryPolicy::standard(2);
          push.trace_tag = "gossip.push";
          node_.call(component, msgtype::kStateUpdate, upd.take(),
                     std::move(push), [](Result<Bytes>) {});
        }
      });
}

void GossipServer::peer_sync_tick() {
  if (!running_) return;
  const auto& members = clique_.view().members;
  std::vector<Endpoint> peers;
  for (const auto& m : members) {
    if (m != node_.self()) peers.push_back(m);
  }
  if (!peers.empty()) {
    const Endpoint peer = peers[peer_index_++ % peers.size()];
    obs::registry().counter(obs::names::kGossipSyncRounds).inc();
    if (obs::trace().enabled()) {
      obs::trace().record(node_.executor().now(),
                          obs::SpanKind::kGossipSyncRound,
                          obs::trace().intern(peer.to_string()),
                          static_cast<std::int64_t>(registry_.size()),
                          static_cast<std::int64_t>((peer_index_ - 1) %
                                                    peers.size()));
    }
    // Digest exchange is an idempotent anti-entropy merge; the next tick
    // rotates to another peer anyway, so two attempts suffice.
    CallOptions digest;
    digest.retry = RetryPolicy::standard(2);
    digest.trace_tag = "gossip.digest";
    node_.call(peer, msgtype::kDigest, make_digest().serialize(),
               std::move(digest), [this](Result<Bytes> r) {
                 if (!running_) return;
                 if (!r.ok()) return;
                 auto digest = Digest::deserialize(*r);
                 if (!digest) return;
                 for (const auto& reg : digest->registrations) {
                   if (!registry_.contains(reg.component)) admit(reg);
                 }
                 for (const auto& s : digest->states) absorb(s);
               });
  }
  sync_timer_ =
      node_.executor().schedule(opts_.peer_sync_period, [this] { peer_sync_tick(); });
}

}  // namespace ew::gossip
