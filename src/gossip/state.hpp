// State records and freshness comparison (paper Section 2.3).
//
// Each synchronized state object is identified by its message type. A
// freshness comparator decides, for two encodings of the same type, which is
// fresher. In the paper a component registers its comparator function with
// the Gossip at run time; functions cannot travel over a C++ wire, so
// comparators are registered by message type in a ComparatorRegistry that
// both gossips and components link against. Types with no registered
// comparator fall back to comparing a leading u64 version stamp — the
// convention all toolkit state types follow anyway.
//
// The store tracks a (version, checksum) pair per type natively, so a
// versioned digest — one TypeSummary per type, never the content — is a
// plain read, and the anti-entropy planner can compute exactly which blobs a
// peer is provably stale on. The version is the content's leading u64 stamp
// (0 when absent); types whose custom comparator contradicts the version
// prefix still converge through the checksum want-lists, at the cost of
// re-exchanging the disputed blob each round (documented in DESIGN.md §12).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/serialize.hpp"
#include "gossip/protocol.hpp"

namespace ew::gossip {

/// Returns <0 if a is staler than b, 0 if equally fresh, >0 if a is fresher.
using FreshnessFn = std::function<int(const Bytes& a, const Bytes& b)>;

/// Commutative, idempotent union of two encodings of the same type:
/// merge(a, b) holds everything either side knew. Registered for state types
/// whose replicas each contribute disjoint facts (a server directory, a
/// membership list) rather than racing to publish one winner. When a merger
/// is registered, every holder — the StateStore included, not just the
/// component applier — re-unions instead of picking a whole-blob winner, so
/// a fresh fact can never be destroyed by an LWW replacement.
using MergeFn = std::function<Bytes(const Bytes& a, const Bytes& b)>;

/// Compare by leading u64 version stamp; unparseable content is stalest.
int compare_by_version_prefix(const Bytes& a, const Bytes& b);

/// The checksum the store tracks per type: 64-bit FNV-1a over the full
/// content. Components reuse it to answer digest-carrying polls (PollRequest)
/// without the store.
std::uint64_t content_checksum(const Bytes& content);

/// Convenience for state types that use the version-prefix convention.
Bytes versioned_blob(std::uint64_t version, const Bytes& body);
Result<std::uint64_t> blob_version(const Bytes& blob);
Result<Bytes> blob_body(const Bytes& blob);

class ComparatorRegistry {
 public:
  void register_comparator(MsgType type, FreshnessFn fn);
  /// The comparator for `type` (version-prefix fallback when unregistered).
  [[nodiscard]] const FreshnessFn& comparator(MsgType type) const;

  /// Mark `type` as union-mergeable. Holders consult merger() and re-union
  /// on conflict instead of replacing the stored copy wholesale.
  void register_merger(MsgType type, MergeFn fn);
  /// The merger for `type`, or nullptr when the type is plain LWW.
  [[nodiscard]] const MergeFn* merger(MsgType type) const;

 private:
  std::unordered_map<MsgType, FreshnessFn> map_;
  std::unordered_map<MsgType, MergeFn> mergers_;
  FreshnessFn fallback_ = compare_by_version_prefix;
};

/// What StateStore::merge decided about an incoming blob. kNew and kFresher
/// replaced the stored copy; kEqual and kStale left it alone; kMerged (only
/// possible for union-mergeable types) combined both copies — the store
/// changed AND the sender is missing facts, so it behaves as "accepted" for
/// dirtiness and as "stale sender" for the push-back path. Gossip servers
/// count each outcome distinctly, and a kStale or kMerged poll result is
/// the trigger for pushing a fresh copy back at the component.
enum class MergeOutcome : std::uint8_t { kNew, kFresher, kEqual, kStale, kMerged };

[[nodiscard]] const char* merge_outcome_name(MergeOutcome o);
[[nodiscard]] inline bool merge_accepted(MergeOutcome o) {
  return o == MergeOutcome::kNew || o == MergeOutcome::kFresher ||
         o == MergeOutcome::kMerged;
}
/// True when the sender of the merged blob is provably missing facts the
/// store now holds — the condition for pushing the stored copy back.
[[nodiscard]] inline bool merge_sender_stale(MergeOutcome o) {
  return o == MergeOutcome::kStale || o == MergeOutcome::kMerged;
}

/// The freshest-known-copy store kept by each Gossip, with native per-type
/// (version, checksum) tracking for the versioned-digest exchange.
class StateStore {
 public:
  explicit StateStore(const ComparatorRegistry& comparators)
      : comparators_(comparators) {}

  /// Merge `incoming` under the type's comparator. On a comparator tie with
  /// different content, the larger checksum wins deterministically, so every
  /// replica of a disputed type converges on one copy.
  MergeOutcome merge(const StateBlob& incoming);

  [[nodiscard]] std::optional<StateBlob> get(MsgType type) const;
  [[nodiscard]] std::vector<StateBlob> all() const;
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool contains(MsgType type) const { return map_.contains(type); }
  [[nodiscard]] std::uint64_t version_of(MsgType type) const;

  /// One summary line per stored type, sorted by type (deterministic wire
  /// encoding for replayable sims).
  [[nodiscard]] std::vector<TypeSummary> summary() const;

  /// The summary line for one type; (type, 0, 0) when nothing is stored —
  /// exactly the shape a digest-carrying poll (PollRequest) wants.
  [[nodiscard]] TypeSummary summary_of(MsgType type) const;

  /// Blobs a peer holding `peer` summaries is provably stale on: types the
  /// peer lacks, types where our version is ahead, and comparator-tie
  /// disputes where our checksum wins.
  [[nodiscard]] std::vector<StateBlob> blobs_fresher_than(
      const std::vector<TypeSummary>& peer) const;

  /// Types in `peer` that are fresher than (or absent from) our store — the
  /// want-list a digest receiver sends back.
  [[nodiscard]] std::vector<MsgType> types_stale_against(
      const std::vector<TypeSummary>& peer) const;

  /// Monotone counter bumped on every accepted merge; the parent tier uses
  /// it to version its clique rollups.
  [[nodiscard]] std::uint64_t store_version() const { return store_version_; }
  /// Order-independent rollup over every (type, version, checksum) line.
  [[nodiscard]] std::uint64_t rollup_checksum() const;

 private:
  struct Entry {
    Bytes content;
    std::uint64_t version = 0;
    std::uint64_t checksum = 0;
  };

  const ComparatorRegistry& comparators_;
  std::map<MsgType, Entry> map_;  // ordered: digests serialize deterministically
  std::uint64_t store_version_ = 0;
};

}  // namespace ew::gossip
