// State records and freshness comparison (paper Section 2.3).
//
// Each synchronized state object is identified by its message type. A
// freshness comparator decides, for two encodings of the same type, which is
// fresher. In the paper a component registers its comparator function with
// the Gossip at run time; functions cannot travel over a C++ wire, so
// comparators are registered by message type in a ComparatorRegistry that
// both gossips and components link against. Types with no registered
// comparator fall back to comparing a leading u64 version stamp — the
// convention all toolkit state types follow anyway.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "common/serialize.hpp"
#include "gossip/protocol.hpp"

namespace ew::gossip {

/// Returns <0 if a is staler than b, 0 if equally fresh, >0 if a is fresher.
using FreshnessFn = std::function<int(const Bytes& a, const Bytes& b)>;

/// Compare by leading u64 version stamp; unparseable content is stalest.
int compare_by_version_prefix(const Bytes& a, const Bytes& b);

/// Convenience for state types that use the version-prefix convention.
Bytes versioned_blob(std::uint64_t version, const Bytes& body);
Result<std::uint64_t> blob_version(const Bytes& blob);
Result<Bytes> blob_body(const Bytes& blob);

class ComparatorRegistry {
 public:
  void register_comparator(MsgType type, FreshnessFn fn);
  /// The comparator for `type` (version-prefix fallback when unregistered).
  [[nodiscard]] const FreshnessFn& comparator(MsgType type) const;

 private:
  std::unordered_map<MsgType, FreshnessFn> map_;
  FreshnessFn fallback_ = compare_by_version_prefix;
};

/// The freshest-known-copy store kept by each Gossip.
class StateStore {
 public:
  explicit StateStore(const ComparatorRegistry& comparators)
      : comparators_(comparators) {}

  /// Merge `incoming`; returns true if it was fresher and replaced the copy.
  bool merge(const StateBlob& incoming);

  [[nodiscard]] std::optional<StateBlob> get(MsgType type) const;
  [[nodiscard]] std::vector<StateBlob> all() const;
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// <0 staler, 0 equal, >0 fresher — `candidate` vs the stored copy.
  /// Returns fresher (>0) when nothing is stored yet.
  [[nodiscard]] int compare_with_stored(MsgType type, const Bytes& candidate) const;

 private:
  const ComparatorRegistry& comparators_;
  std::unordered_map<MsgType, Bytes> map_;
};

}  // namespace ew::gossip
