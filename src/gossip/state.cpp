#include "gossip/state.hpp"

namespace ew::gossip {

int compare_by_version_prefix(const Bytes& a, const Bytes& b) {
  const auto va = blob_version(a);
  const auto vb = blob_version(b);
  const std::uint64_t x = va ? *va : 0;
  const std::uint64_t y = vb ? *vb : 0;
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

Bytes versioned_blob(std::uint64_t version, const Bytes& body) {
  Writer w(8 + body.size());
  w.u64(version);
  w.raw(body);
  return w.take();
}

Result<std::uint64_t> blob_version(const Bytes& blob) {
  Reader r(blob);
  return r.u64();
}

Result<Bytes> blob_body(const Bytes& blob) {
  Reader r(blob);
  auto v = r.u64();
  if (!v) return v.error();
  return r.raw(r.remaining());
}

void ComparatorRegistry::register_comparator(MsgType type, FreshnessFn fn) {
  map_[type] = std::move(fn);
}

const FreshnessFn& ComparatorRegistry::comparator(MsgType type) const {
  auto it = map_.find(type);
  return it == map_.end() ? fallback_ : it->second;
}

bool StateStore::merge(const StateBlob& incoming) {
  if (compare_with_stored(incoming.type, incoming.content) > 0) {
    map_[incoming.type] = incoming.content;
    return true;
  }
  return false;
}

std::optional<StateBlob> StateStore::get(MsgType type) const {
  auto it = map_.find(type);
  if (it == map_.end()) return std::nullopt;
  return StateBlob{type, it->second};
}

std::vector<StateBlob> StateStore::all() const {
  std::vector<StateBlob> out;
  out.reserve(map_.size());
  for (const auto& [type, content] : map_) out.push_back(StateBlob{type, content});
  return out;
}

int StateStore::compare_with_stored(MsgType type, const Bytes& candidate) const {
  auto it = map_.find(type);
  if (it == map_.end()) return 1;
  return comparators_.comparator(type)(candidate, it->second);
}

}  // namespace ew::gossip
