#include "gossip/state.hpp"

#include <string_view>

#include "common/hash.hpp"

namespace ew::gossip {

std::uint64_t content_checksum(const Bytes& content) {
  return fnv1a64(std::string_view(reinterpret_cast<const char*>(content.data()),
                                  content.size()));
}

int compare_by_version_prefix(const Bytes& a, const Bytes& b) {
  const auto va = blob_version(a);
  const auto vb = blob_version(b);
  const std::uint64_t x = va ? *va : 0;
  const std::uint64_t y = vb ? *vb : 0;
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

Bytes versioned_blob(std::uint64_t version, const Bytes& body) {
  Writer w(8 + body.size());
  w.u64(version);
  w.raw(body);
  return w.take();
}

Result<std::uint64_t> blob_version(const Bytes& blob) {
  Reader r(blob);
  return r.u64();
}

Result<Bytes> blob_body(const Bytes& blob) {
  Reader r(blob);
  auto v = r.u64();
  if (!v) return v.error();
  return r.raw(r.remaining());
}

void ComparatorRegistry::register_comparator(MsgType type, FreshnessFn fn) {
  map_[type] = std::move(fn);
}

const FreshnessFn& ComparatorRegistry::comparator(MsgType type) const {
  auto it = map_.find(type);
  return it == map_.end() ? fallback_ : it->second;
}

void ComparatorRegistry::register_merger(MsgType type, MergeFn fn) {
  mergers_[type] = std::move(fn);
}

const MergeFn* ComparatorRegistry::merger(MsgType type) const {
  auto it = mergers_.find(type);
  return it == mergers_.end() ? nullptr : &it->second;
}

const char* merge_outcome_name(MergeOutcome o) {
  switch (o) {
    case MergeOutcome::kNew: return "new";
    case MergeOutcome::kFresher: return "fresher";
    case MergeOutcome::kEqual: return "equal";
    case MergeOutcome::kStale: return "stale";
    case MergeOutcome::kMerged: return "merged";
  }
  return "?";
}

MergeOutcome StateStore::merge(const StateBlob& incoming) {
  const std::uint64_t checksum = content_checksum(incoming.content);
  const MergeFn* merger = comparators_.merger(incoming.type);
  // Union-mergeable types track version 0: their content has no meaningful
  // version prefix, so digest staleness for them is decided by checksum
  // alone and anti-entropy ships the disputed blob until the unions agree.
  auto version_of = [&](const Bytes& content) -> std::uint64_t {
    if (merger != nullptr) return 0;
    const auto ver = blob_version(content);
    return ver ? *ver : 0;
  };
  auto it = map_.find(incoming.type);
  if (it == map_.end()) {
    map_.emplace(incoming.type,
                 Entry{incoming.content, version_of(incoming.content), checksum});
    ++store_version_;
    return MergeOutcome::kNew;
  }
  if (merger != nullptr) {
    // Re-union instead of picking a whole-blob winner: an LWW replacement
    // here would destroy facts the losing copy alone knew (the server-
    // directory heartbeat ping-pong that kept aging live peers out).
    Bytes merged = (*merger)(incoming.content, it->second.content);
    if (merged == it->second.content) {
      return checksum == it->second.checksum ? MergeOutcome::kEqual
                                             : MergeOutcome::kStale;
    }
    const bool sender_complete = merged == incoming.content;
    const std::uint64_t merged_checksum = content_checksum(merged);
    it->second = Entry{std::move(merged), 0, merged_checksum};
    ++store_version_;
    return sender_complete ? MergeOutcome::kFresher : MergeOutcome::kMerged;
  }
  const int cmp =
      comparators_.comparator(incoming.type)(incoming.content, it->second.content);
  if (cmp < 0) return MergeOutcome::kStale;
  if (cmp == 0) {
    if (checksum == it->second.checksum) return MergeOutcome::kEqual;
    // Comparator tie, different bytes: adopt the larger checksum so every
    // replica of a disputed type lands on the same copy.
    if (checksum < it->second.checksum) return MergeOutcome::kStale;
  }
  const auto ver = blob_version(incoming.content);
  it->second = Entry{incoming.content, ver ? *ver : 0, checksum};
  ++store_version_;
  return MergeOutcome::kFresher;
}

std::optional<StateBlob> StateStore::get(MsgType type) const {
  auto it = map_.find(type);
  if (it == map_.end()) return std::nullopt;
  return StateBlob{type, it->second.content};
}

std::vector<StateBlob> StateStore::all() const {
  std::vector<StateBlob> out;
  out.reserve(map_.size());
  for (const auto& [type, entry] : map_) out.push_back(StateBlob{type, entry.content});
  return out;
}

std::uint64_t StateStore::version_of(MsgType type) const {
  auto it = map_.find(type);
  return it == map_.end() ? 0 : it->second.version;
}

std::vector<TypeSummary> StateStore::summary() const {
  std::vector<TypeSummary> out;
  out.reserve(map_.size());
  for (const auto& [type, entry] : map_) {
    out.push_back(TypeSummary{type, entry.version, entry.checksum});
  }
  return out;
}

TypeSummary StateStore::summary_of(MsgType type) const {
  auto it = map_.find(type);
  if (it == map_.end()) return TypeSummary{type, 0, 0};
  return TypeSummary{type, it->second.version, it->second.checksum};
}

std::vector<StateBlob> StateStore::blobs_fresher_than(
    const std::vector<TypeSummary>& peer) const {
  std::vector<StateBlob> out;
  // `peer` arrives sorted by type (StateStore::summary order survives the
  // wire); walk both sorted sequences in lockstep.
  auto pit = peer.begin();
  for (const auto& [type, entry] : map_) {
    while (pit != peer.end() && pit->type < type) ++pit;
    if (pit == peer.end() || pit->type != type) {
      out.push_back(StateBlob{type, entry.content});
      continue;
    }
    // Union-mergeable types have no checksum ORDER — either side may hold
    // facts the other lacks — so any checksum difference ships the blob.
    // Merging is idempotent and commutative, so the symmetric exchange
    // converges (checksums equalize) instead of ping-ponging.
    if (comparators_.merger(type) != nullptr) {
      if (entry.checksum != pit->checksum) {
        out.push_back(StateBlob{type, entry.content});
      }
      continue;
    }
    if (entry.version > pit->version ||
        (entry.version == pit->version && entry.checksum > pit->checksum)) {
      out.push_back(StateBlob{type, entry.content});
    }
  }
  return out;
}

std::vector<MsgType> StateStore::types_stale_against(
    const std::vector<TypeSummary>& peer) const {
  std::vector<MsgType> out;
  for (const auto& s : peer) {
    auto it = map_.find(s.type);
    if (it == map_.end()) {
      out.push_back(s.type);
      continue;
    }
    // Union types: want the peer's copy whenever the contents differ at
    // all — it may hold facts we lack even if our checksum is "larger".
    if (comparators_.merger(s.type) != nullptr) {
      if (s.checksum != it->second.checksum) out.push_back(s.type);
      continue;
    }
    if (s.version > it->second.version ||
        (s.version == it->second.version && s.checksum > it->second.checksum)) {
      out.push_back(s.type);
    }
  }
  return out;
}

std::uint64_t StateStore::rollup_checksum() const {
  // XOR of per-entry hashes: order-independent, cheap to audit, and any
  // single (type, version, checksum) difference flips the rollup.
  std::uint64_t acc = 0;
  for (const auto& [type, entry] : map_) {
    Writer w(2 + 16);
    w.u16(type);
    w.u64(entry.version);
    w.u64(entry.checksum);
    const Bytes line = w.take();
    acc ^= fnv1a64(std::string_view(reinterpret_cast<const char*>(line.data()),
                                    line.size()));
  }
  return acc;
}

}  // namespace ew::gossip
