#include "gossip/sync_client.hpp"

#include "common/log.hpp"
#include "obs/registry.hpp"

namespace ew::gossip {

SyncClient::SyncClient(Node& node, const ComparatorRegistry& comparators,
                       std::vector<Endpoint> gossips, Options opts)
    : node_(node),
      comparators_(comparators),
      gossips_(std::move(gossips)),
      opts_(opts) {}

void SyncClient::expose(MsgType type, StateHandlers handlers) {
  handlers_[type] = std::move(handlers);
}

void SyncClient::start() {
  if (running_) return;
  running_ = true;
  node_.handle(msgtype::kGetState,
               [this](const IncomingMessage& m, Responder r) { on_get_state(m, r); });
  node_.handle(msgtype::kGetStateBatch, [this](const IncomingMessage& m, Responder r) {
    on_get_state_batch(m, r);
  });
  node_.handle(msgtype::kStateUpdate, [this](const IncomingMessage& m, Responder r) {
    on_state_update(m, r);
  });
  if (!gossips_.empty()) register_with(0);
}

void SyncClient::stop() {
  if (!running_) return;
  running_ = false;
  node_.executor().cancel(renew_timer_);
  registered_ = false;
}

void SyncClient::register_with(std::size_t index) {
  if (!running_ || gossips_.empty()) return;
  const Endpoint target = gossips_[index % gossips_.size()];
  Registration reg;
  reg.component = node_.self();
  for (const auto& [type, h] : handlers_) reg.types.push_back(type);
  // Registration renewals are idempotent; retry within the call before the
  // slower next-gossip failover below.
  CallOptions opts = CallOptions::fixed(opts_.call_timeout);
  opts.retry = RetryPolicy::standard(2);
  opts.trace_tag = "sync.register";
  node_.call(target, msgtype::kRegister, reg.serialize(), std::move(opts),
             [this, target, index](Result<Bytes> r) {
               if (!running_) return;
               if (r.ok()) {
                 registered_ = true;
                 current_gossip_ = target;
                 schedule_renewal();
               } else {
                 registered_ = false;
                 // Fail over to the next well-known gossip after a beat.
                 renew_timer_ = node_.executor().schedule(
                     opts_.retry_delay, [this, index] { register_with(index + 1); });
               }
             });
}

void SyncClient::schedule_renewal() {
  renew_timer_ = node_.executor().schedule(opts_.reregister_period, [this] {
    if (!running_) return;
    // Renew with the same gossip; its failure pushes us down the list.
    for (std::size_t i = 0; i < gossips_.size(); ++i) {
      if (gossips_[i] == current_gossip_) {
        register_with(i);
        return;
      }
    }
    register_with(0);
  });
}

void SyncClient::on_get_state(const IncomingMessage& msg, const Responder& resp) {
  Reader r(msg.packet.payload);
  auto type = r.u16();
  if (!type) {
    resp.fail(Err::kProtocol, "missing state type");
    return;
  }
  auto it = handlers_.find(*type);
  if (it == handlers_.end() || !it->second.provider) {
    resp.fail(Err::kRejected, "state type not exposed: " + std::to_string(*type));
    return;
  }
  resp.ok(it->second.provider());
}

void SyncClient::on_get_state_batch(const IncomingMessage& msg,
                                    const Responder& resp) {
  auto req = PollRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(Err::kProtocol, req.error().message);
    return;
  }
  // One response for the whole poll. Types we don't expose are skipped, not
  // failed: a gossip's registry can briefly trail a re-registration, and a
  // partial answer still advances anti-entropy. Types whose content still
  // checksums to what the gossip already holds are elided — the digest
  // cache that keeps steady-state polls at summary size.
  PollReply reply;
  std::size_t exposed = 0;
  for (const TypeSummary& held : req->held) {
    auto it = handlers_.find(held.type);
    if (it == handlers_.end() || !it->second.provider) continue;
    ++exposed;
    Bytes current = it->second.provider();
    if (held.checksum != 0 && held.checksum == content_checksum(current)) {
      continue;  // the gossip's copy is byte-identical; nothing to ship
    }
    reply.blobs.push_back(StateBlob{held.type, std::move(current)});
  }
  reply.fresh = exposed > 0 && reply.blobs.empty();
  if (reply.fresh) {
    ++poll_cache_hits_;
    obs::registry().counter(obs::names::kGossipPollCacheHits).inc();
  }
  resp.ok(reply.serialize());
}

void SyncClient::on_state_update(const IncomingMessage& msg, const Responder& resp) {
  Reader r(msg.packet.payload);
  auto blob = read_state_blob(r);
  if (!blob) {
    resp.fail(Err::kProtocol, blob.error().message);
    return;
  }
  auto it = handlers_.find(blob->type);
  if (it == handlers_.end() || !it->second.applier) {
    resp.fail(Err::kRejected, "state type not exposed: " + std::to_string(blob->type));
    return;
  }
  // Union-mergeable types skip the freshness guard entirely: their applier
  // IS a union, so applying any copy is idempotent and monotone — it can
  // only add facts, never roll the component backwards.
  if (comparators_.merger(blob->type) != nullptr) {
    it->second.applier(blob->content);
    ++updates_applied_;
    resp.ok();
    return;
  }
  // Apply only if fresher than what we hold — a slow Gossip must not be
  // able to roll a component's state backwards. A comparator TIE with
  // different content resolves exactly like StateStore::merge: the larger
  // content checksum wins deterministically. Without the tie-break, two
  // components publishing the same type under equal versions (the
  // multi-writer WISH env blob) each drop the other's pushed copy as
  // "equally fresh" and their contents never exchange.
  if (it->second.provider) {
    const Bytes mine = it->second.provider();
    const int cmp = comparators_.comparator(blob->type)(blob->content, mine);
    if (cmp < 0 ||
        (cmp == 0 &&
         content_checksum(blob->content) <= content_checksum(mine))) {
      resp.ok();  // polite no-op; we are already at least as fresh
      return;
    }
  }
  it->second.applier(blob->content);
  ++updates_applied_;
  resp.ok();
}

}  // namespace ew::gossip
