#include "gossip/hierarchy.hpp"

#include <string>

#include "common/hash.hpp"

namespace ew::gossip {

std::uint32_t clique_of_gossip(const Endpoint& self,
                               const std::vector<Endpoint>& pool,
                               std::uint32_t num_cliques) {
  if (num_cliques <= 1) return 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool[i] == self) return static_cast<std::uint32_t>(i % num_cliques);
  }
  return static_cast<std::uint32_t>(fnv1a64(self.to_string()) % num_cliques);
}

std::vector<Endpoint> clique_members(const std::vector<Endpoint>& pool,
                                     std::uint32_t num_cliques,
                                     std::uint32_t clique) {
  if (num_cliques <= 1) return pool;
  std::vector<Endpoint> out;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (i % num_cliques == clique) out.push_back(pool[i]);
  }
  return out;
}

std::uint32_t home_clique(MsgType type, std::uint32_t num_cliques) {
  if (num_cliques <= 1) return 0;
  const std::string item = "type-" + std::to_string(type);
  std::uint32_t best = 0;
  std::uint64_t best_w = 0;
  for (std::uint32_t k = 0; k < num_cliques; ++k) {
    const std::uint64_t w =
        rendezvous_weight("clique-" + std::to_string(k), item);
    if (k == 0 || w > best_w) {
      best = k;
      best_w = w;
    }
  }
  return best;
}

}  // namespace ew::gossip
