#include "gossip/protocol.hpp"

#include <algorithm>

namespace ew::gossip {

namespace {
// Count guards: a hostile or truncated encoding must be rejected before any
// allocation it names. Every variable-length vector is checked against both
// a hard cap and the bytes actually remaining in the buffer (each element
// costs at least `min_elem` wire bytes, so a count beyond remaining/min_elem
// cannot be honest).
constexpr std::uint32_t kMaxListLen = 100'000;

Result<std::uint32_t> read_count(Reader& r, std::size_t min_elem,
                                 const char* what) {
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > kMaxListLen) return Error{Err::kProtocol, std::string(what) + " too large"};
  if (min_elem > 0 && *n > r.remaining() / min_elem) {
    return Error{Err::kProtocol, std::string(what) + " count exceeds payload"};
  }
  return *n;
}
}  // namespace

void write_endpoint(Writer& w, const Endpoint& e) {
  w.str(e.host);
  w.u16(e.port);
}

Result<Endpoint> read_endpoint(Reader& r) {
  auto host = r.str();
  if (!host) return host.error();
  auto port = r.u16();
  if (!port) return port.error();
  return Endpoint{std::move(*host), *port};
}

void Registration::write(Writer& w) const {
  write_endpoint(w, component);
  w.u32(static_cast<std::uint32_t>(types.size()));
  for (MsgType t : types) w.u16(t);
}

Result<Registration> Registration::read(Reader& r) {
  Registration reg;
  auto ep = read_endpoint(r);
  if (!ep) return ep.error();
  reg.component = std::move(*ep);
  auto n = read_count(r, sizeof(MsgType), "registration type list");
  if (!n) return n.error();
  if (*n > 4096) return Error{Err::kProtocol, "registration type list too long"};
  reg.types.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto t = r.u16();
    if (!t) return t.error();
    reg.types.push_back(*t);
  }
  return reg;
}

Bytes Registration::serialize() const {
  Writer w;
  write(w);
  return w.take();
}

Result<Registration> Registration::deserialize(const Bytes& data) {
  Reader r(data);
  return read(r);
}

void write_state_blob(Writer& w, const StateBlob& s) {
  w.u16(s.type);
  w.blob(s.content);
}

Result<StateBlob> read_state_blob(Reader& r) {
  StateBlob s;
  auto t = r.u16();
  if (!t) return t.error();
  s.type = *t;
  auto c = r.blob();
  if (!c) return c.error();
  s.content = std::move(*c);
  return s;
}

void write_type_summary(Writer& w, const TypeSummary& s) {
  w.u16(s.type);
  w.u64(s.version);
  w.u64(s.checksum);
}

Result<TypeSummary> read_type_summary(Reader& r) {
  TypeSummary s;
  auto t = r.u16();
  if (!t) return t.error();
  s.type = *t;
  auto v = r.u64();
  if (!v) return v.error();
  s.version = *v;
  auto c = r.u64();
  if (!c) return c.error();
  s.checksum = *c;
  return s;
}

Bytes Digest::serialize() const {
  Writer w(4 + 4 + summaries.size() * 18 + 16);
  w.u32(clique);
  w.u32(static_cast<std::uint32_t>(summaries.size()));
  for (const auto& s : summaries) write_type_summary(w, s);
  w.u64(reg_count);
  w.u64(reg_checksum);
  return w.take();
}

Result<Digest> Digest::deserialize(const Bytes& data) {
  Reader r(data);
  Digest d;
  auto clique = r.u32();
  if (!clique) return clique.error();
  d.clique = *clique;
  auto n = read_count(r, 18, "digest summary list");  // u16 + 2 * u64
  if (!n) return n.error();
  d.summaries.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto s = read_type_summary(r);
    if (!s) return s.error();
    d.summaries.push_back(*s);
  }
  auto rc = r.u64();
  if (!rc) return rc.error();
  d.reg_count = *rc;
  auto rx = r.u64();
  if (!rx) return rx.error();
  d.reg_checksum = *rx;
  return d;
}

Bytes Delta::serialize() const {
  Writer w;
  w.u32(clique);
  w.u32(static_cast<std::uint32_t>(blobs.size()));
  for (const auto& b : blobs) write_state_blob(w, b);
  w.u32(static_cast<std::uint32_t>(want.size()));
  for (MsgType t : want) w.u16(t);
  w.u32(static_cast<std::uint32_t>(registrations.size()));
  for (const auto& reg : registrations) reg.write(w);
  return w.take();
}

Result<Delta> Delta::deserialize(const Bytes& data) {
  Reader r(data);
  Delta d;
  auto clique = r.u32();
  if (!clique) return clique.error();
  d.clique = *clique;
  auto nb = read_count(r, 6, "delta blob list");  // u16 + empty u32 blob
  if (!nb) return nb.error();
  d.blobs.reserve(*nb);
  for (std::uint32_t i = 0; i < *nb; ++i) {
    auto b = read_state_blob(r);
    if (!b) return b.error();
    d.blobs.push_back(std::move(*b));
  }
  auto nw = read_count(r, sizeof(MsgType), "delta want list");
  if (!nw) return nw.error();
  d.want.reserve(*nw);
  for (std::uint32_t i = 0; i < *nw; ++i) {
    auto t = r.u16();
    if (!t) return t.error();
    d.want.push_back(*t);
  }
  auto nr = read_count(r, 10, "delta registration list");  // min endpoint+count
  if (!nr) return nr.error();
  d.registrations.reserve(*nr);
  for (std::uint32_t i = 0; i < *nr; ++i) {
    auto reg = Registration::read(r);
    if (!reg) return reg.error();
    d.registrations.push_back(std::move(*reg));
  }
  return d;
}

void CliqueSummary::write(Writer& w) const {
  w.u32(clique);
  w.u64(version);
  w.u64(checksum);
  w.u64(states);
  w.u64(components);
}

Result<CliqueSummary> CliqueSummary::read(Reader& r) {
  CliqueSummary s;
  auto c = r.u32();
  if (!c) return c.error();
  s.clique = *c;
  auto v = r.u64();
  if (!v) return v.error();
  s.version = *v;
  auto x = r.u64();
  if (!x) return x.error();
  s.checksum = *x;
  auto st = r.u64();
  if (!st) return st.error();
  s.states = *st;
  auto comp = r.u64();
  if (!comp) return comp.error();
  s.components = *comp;
  return s;
}

Bytes ParentDigest::serialize() const {
  Writer w(4 + cliques.size() * 36);
  w.u32(static_cast<std::uint32_t>(cliques.size()));
  for (const auto& c : cliques) c.write(w);
  return w.take();
}

Result<ParentDigest> ParentDigest::deserialize(const Bytes& data) {
  Reader r(data);
  ParentDigest d;
  auto n = read_count(r, 36, "parent digest");  // u32 + 4 * u64
  if (!n) return n.error();
  d.cliques.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto c = CliqueSummary::read(r);
    if (!c) return c.error();
    d.cliques.push_back(*c);
  }
  return d;
}

Bytes serialize_type_list(const std::vector<MsgType>& types) {
  Writer w(4 + types.size() * 2);
  w.u32(static_cast<std::uint32_t>(types.size()));
  for (MsgType t : types) w.u16(t);
  return w.take();
}

Result<std::vector<MsgType>> deserialize_type_list(const Bytes& data) {
  Reader r(data);
  auto n = read_count(r, sizeof(MsgType), "type list");
  if (!n) return n.error();
  std::vector<MsgType> out;
  out.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto t = r.u16();
    if (!t) return t.error();
    out.push_back(*t);
  }
  return out;
}

Bytes serialize_blob_list(const std::vector<StateBlob>& blobs) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(blobs.size()));
  for (const auto& b : blobs) write_state_blob(w, b);
  return w.take();
}

Result<std::vector<StateBlob>> deserialize_blob_list(const Bytes& data) {
  Reader r(data);
  auto n = read_count(r, 6, "blob list");
  if (!n) return n.error();
  std::vector<StateBlob> out;
  out.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto b = read_state_blob(r);
    if (!b) return b.error();
    out.push_back(std::move(*b));
  }
  return out;
}

Bytes PollRequest::serialize() const {
  Writer w(4 + held.size() * 18);
  w.u32(static_cast<std::uint32_t>(held.size()));
  for (const auto& s : held) write_type_summary(w, s);
  return w.take();
}

Result<PollRequest> PollRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto n = read_count(r, 18, "poll request");
  if (!n) return n.error();
  PollRequest req;
  req.held.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto s = read_type_summary(r);
    if (!s) return s.error();
    req.held.push_back(*s);
  }
  return req;
}

Bytes PollReply::serialize() const {
  Writer w;
  w.u8(fresh ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(blobs.size()));
  for (const auto& b : blobs) write_state_blob(w, b);
  return w.take();
}

Result<PollReply> PollReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto flag = r.u8();
  if (!flag) return flag.error();
  auto n = read_count(r, 6, "poll reply");
  if (!n) return n.error();
  PollReply rep;
  rep.fresh = *flag != 0;
  rep.blobs.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto b = read_state_blob(r);
    if (!b) return b.error();
    rep.blobs.push_back(std::move(*b));
  }
  return rep;
}

bool View::contains(const Endpoint& e) const {
  return std::binary_search(members.begin(), members.end(), e);
}

bool View::newer_than(const View& other) const {
  if (generation != other.generation) return generation > other.generation;
  return leader < other.leader;
}

void View::write(Writer& w) const {
  w.u64(generation);
  write_endpoint(w, leader);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) write_endpoint(w, m);
}

Result<View> View::read(Reader& r) {
  View v;
  auto gen = r.u64();
  if (!gen) return gen.error();
  v.generation = *gen;
  auto leader = read_endpoint(r);
  if (!leader) return leader.error();
  v.leader = std::move(*leader);
  auto n = read_count(r, 6, "view member list");
  if (!n) return n.error();
  v.members.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto m = read_endpoint(r);
    if (!m) return m.error();
    v.members.push_back(std::move(*m));
  }
  std::sort(v.members.begin(), v.members.end());
  return v;
}

Bytes View::serialize() const {
  Writer w;
  write(w);
  return w.take();
}

Result<View> View::deserialize(const Bytes& data) {
  Reader r(data);
  return read(r);
}

namespace {
void write_endpoint_list(Writer& w, const std::vector<Endpoint>& list) {
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const auto& e : list) write_endpoint(w, e);
}

Result<std::vector<Endpoint>> read_endpoint_list(Reader& r) {
  auto n = read_count(r, 6, "endpoint list");
  if (!n) return n.error();
  std::vector<Endpoint> out;
  out.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto e = read_endpoint(r);
    if (!e) return e.error();
    out.push_back(std::move(*e));
  }
  return out;
}
}  // namespace

Bytes Token::serialize() const {
  Writer w;
  w.u64(round);
  view.write(w);
  write_endpoint_list(w, visited);
  write_endpoint_list(w, suspects);
  return w.take();
}

Result<Token> Token::deserialize(const Bytes& data) {
  Reader r(data);
  Token t;
  auto round = r.u64();
  if (!round) return round.error();
  t.round = *round;
  auto v = View::read(r);
  if (!v) return v.error();
  t.view = std::move(*v);
  auto visited = read_endpoint_list(r);
  if (!visited) return visited.error();
  t.visited = std::move(*visited);
  auto suspects = read_endpoint_list(r);
  if (!suspects) return suspects.error();
  t.suspects = std::move(*suspects);
  return t;
}

}  // namespace ew::gossip
