#include "gossip/protocol.hpp"

#include <algorithm>

namespace ew::gossip {

void write_endpoint(Writer& w, const Endpoint& e) {
  w.str(e.host);
  w.u16(e.port);
}

Result<Endpoint> read_endpoint(Reader& r) {
  auto host = r.str();
  if (!host) return host.error();
  auto port = r.u16();
  if (!port) return port.error();
  return Endpoint{std::move(*host), *port};
}

Bytes Registration::serialize() const {
  Writer w;
  write_endpoint(w, component);
  w.u32(static_cast<std::uint32_t>(types.size()));
  for (MsgType t : types) w.u16(t);
  return w.take();
}

Result<Registration> Registration::deserialize(const Bytes& data) {
  Reader r(data);
  Registration reg;
  auto ep = read_endpoint(r);
  if (!ep) return ep.error();
  reg.component = std::move(*ep);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > 4096) return Error{Err::kProtocol, "registration type list too long"};
  reg.types.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto t = r.u16();
    if (!t) return t.error();
    reg.types.push_back(*t);
  }
  return reg;
}

void write_state_blob(Writer& w, const StateBlob& s) {
  w.u16(s.type);
  w.blob(s.content);
}

Result<StateBlob> read_state_blob(Reader& r) {
  StateBlob s;
  auto t = r.u16();
  if (!t) return t.error();
  s.type = *t;
  auto c = r.blob();
  if (!c) return c.error();
  s.content = std::move(*c);
  return s;
}

Bytes Digest::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(registrations.size()));
  for (const auto& reg : registrations) w.blob(reg.serialize());
  w.u32(static_cast<std::uint32_t>(states.size()));
  for (const auto& s : states) write_state_blob(w, s);
  return w.take();
}

Result<Digest> Digest::deserialize(const Bytes& data) {
  Reader r(data);
  Digest d;
  auto nreg = r.u32();
  if (!nreg) return nreg.error();
  if (*nreg > 100'000) return Error{Err::kProtocol, "digest too large"};
  for (std::uint32_t i = 0; i < *nreg; ++i) {
    auto blob = r.blob();
    if (!blob) return blob.error();
    auto reg = Registration::deserialize(*blob);
    if (!reg) return reg.error();
    d.registrations.push_back(std::move(*reg));
  }
  auto nstate = r.u32();
  if (!nstate) return nstate.error();
  if (*nstate > 100'000) return Error{Err::kProtocol, "digest too large"};
  for (std::uint32_t i = 0; i < *nstate; ++i) {
    auto s = read_state_blob(r);
    if (!s) return s.error();
    d.states.push_back(std::move(*s));
  }
  return d;
}

bool View::contains(const Endpoint& e) const {
  return std::binary_search(members.begin(), members.end(), e);
}

bool View::newer_than(const View& other) const {
  if (generation != other.generation) return generation > other.generation;
  return leader < other.leader;
}

void View::write(Writer& w) const {
  w.u64(generation);
  write_endpoint(w, leader);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) write_endpoint(w, m);
}

Result<View> View::read(Reader& r) {
  View v;
  auto gen = r.u64();
  if (!gen) return gen.error();
  v.generation = *gen;
  auto leader = read_endpoint(r);
  if (!leader) return leader.error();
  v.leader = std::move(*leader);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > 100'000) return Error{Err::kProtocol, "view too large"};
  v.members.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto m = read_endpoint(r);
    if (!m) return m.error();
    v.members.push_back(std::move(*m));
  }
  std::sort(v.members.begin(), v.members.end());
  return v;
}

Bytes View::serialize() const {
  Writer w;
  write(w);
  return w.take();
}

Result<View> View::deserialize(const Bytes& data) {
  Reader r(data);
  return read(r);
}

namespace {
void write_endpoint_list(Writer& w, const std::vector<Endpoint>& list) {
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const auto& e : list) write_endpoint(w, e);
}

Result<std::vector<Endpoint>> read_endpoint_list(Reader& r) {
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > 100'000) return Error{Err::kProtocol, "endpoint list too large"};
  std::vector<Endpoint> out;
  out.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto e = read_endpoint(r);
    if (!e) return e.error();
    out.push_back(std::move(*e));
  }
  return out;
}
}  // namespace

Bytes Token::serialize() const {
  Writer w;
  w.u64(round);
  view.write(w);
  write_endpoint_list(w, visited);
  write_endpoint_list(w, suspects);
  return w.take();
}

Result<Token> Token::deserialize(const Bytes& data) {
  Reader r(data);
  Token t;
  auto round = r.u64();
  if (!round) return round.error();
  t.round = *round;
  auto v = View::read(r);
  if (!v) return v.error();
  t.view = std::move(*v);
  auto visited = read_endpoint_list(r);
  if (!visited) return visited.error();
  t.visited = std::move(*visited);
  auto suspects = read_endpoint_list(r);
  if (!suspects) return suspects.error();
  t.suspects = std::move(*suspects);
  return t;
}

}  // namespace ew::gossip
