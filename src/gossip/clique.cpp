#include "gossip/clique.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ew::gossip {

CliqueMember::CliqueMember(Node& node, std::vector<Endpoint> well_known,
                           Options opts)
    : node_(node), well_known_(std::move(well_known)), opts_(opts) {}

void CliqueMember::start() {
  if (running_) return;
  running_ = true;
  node_.handle(mt_token(), [this](const IncomingMessage& m, Responder r) {
    on_token(m, r);
  });
  node_.handle(mt_join(), [this](const IncomingMessage& m, Responder r) {
    on_join(m, r);
  });
  node_.handle(mt_probe(), [this](const IncomingMessage& m, Responder r) {
    on_probe(m, r);
  });
  node_.handle(mt_merge(), [this](const IncomingMessage& m, Responder r) {
    on_merge(m, r);
  });
  view_.generation = 1;
  view_.leader = node_.self();
  view_.members = {node_.self()};
  last_token_ = node_.executor().now();
  note_view_change();
  for (auto& fn : listeners_) fn(view_);
  schedule_leader_tick();
  schedule_probe_tick();
  schedule_loss_check();
  announce_join();
}

void CliqueMember::announce_join() {
  // Announce ourselves to every well-known peer right away instead of
  // waiting for the probe rotation: a crash-restarted member rejoins the
  // clique in one round trip (the join response carries the peer's view,
  // which consider_foreign_view adopts or merges with).
  for (const auto& peer : well_known_) {
    if (peer == node_.self()) continue;
    Writer w;
    write_endpoint(w, node_.self());
    node_.call(peer, mt_join(), w.take(), hop_options(),
               [this](Result<Bytes> r) {
                 if (!running_ || !r.ok()) return;
                 auto v = View::deserialize(*r);
                 if (v) consider_foreign_view(*v);
               });
  }
}

void CliqueMember::note_view_change() {
  if (!obs::trace().enabled()) return;
  obs::trace().record(node_.executor().now(), obs::SpanKind::kCliqueViewChange,
                      obs::trace().intern(node_.self().to_string()),
                      static_cast<std::int64_t>(view_.generation),
                      static_cast<std::int64_t>(view_.members.size()));
}

void CliqueMember::stop() {
  if (!running_) return;
  running_ = false;
  node_.executor().cancel(leader_timer_);
  node_.executor().cancel(probe_timer_);
  node_.executor().cancel(loss_timer_);
}

void CliqueMember::install_view(View v) {
  for (const auto& m : v.members) {
    if (m != node_.self()) ever_seen_.insert(m);
  }
  if (!v.contains(node_.self())) {
    // We were dropped (marked suspect while partitioned). Do not adopt a
    // view we are not part of; restart as a singleton and merge back in.
    become_singleton();
    return;
  }
  const bool changed = v.generation != view_.generation ||
                       v.leader != view_.leader || v.members != view_.members;
  const bool new_leader = v.leader != view_.leader;
  view_ = std::move(v);
  last_token_ = node_.executor().now();
  merging_ = false;
  if (changed) {
    EW_DEBUG << node_.self().to_string() << ": view gen " << view_.generation
             << " leader " << view_.leader.to_string() << " size "
             << view_.members.size();
    if (new_leader) {
      obs::registry().counter(obs::names::kCliqueElections).inc();
      if (obs::trace().enabled()) {
        obs::trace().record(node_.executor().now(),
                            obs::SpanKind::kCliqueElection,
                            obs::trace().intern(view_.leader.to_string()),
                            static_cast<std::int64_t>(view_.members.size()),
                            is_leader() ? 1 : 0);
      }
    }
    note_view_change();
    for (auto& fn : listeners_) fn(view_);
  }
}

void CliqueMember::become_singleton() {
  ++fragmentations_;
  obs::registry().counter(obs::names::kCliqueFragmentations).inc();
  // Fragmenting elects self: the singleton view has a new leader.
  obs::registry().counter(obs::names::kCliqueElections).inc();
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kCliqueElection,
                        obs::trace().intern(node_.self().to_string()), 1, 1);
  }
  View v;
  v.generation = view_.generation + 1;
  v.leader = node_.self();
  v.members = {node_.self()};
  view_ = std::move(v);
  last_token_ = node_.executor().now();
  pending_joins_.clear();
  gen_floor_ = 0;
  note_view_change();
  for (auto& fn : listeners_) fn(view_);
}

void CliqueMember::schedule_leader_tick() {
  leader_timer_ = node_.executor().schedule(opts_.token_period, [this] {
    if (!running_) return;
    leader_tick();
    schedule_leader_tick();
  });
}

void CliqueMember::schedule_probe_tick() {
  probe_timer_ = node_.executor().schedule(opts_.probe_period, [this] {
    if (!running_) return;
    probe_tick();
    schedule_probe_tick();
  });
}

void CliqueMember::schedule_loss_check() {
  loss_timer_ = node_.executor().schedule(opts_.token_period, [this] {
    if (!running_) return;
    loss_check();
    schedule_loss_check();
  });
}

Duration CliqueMember::token_loss_timeout() const {
  return opts_.token_period * opts_.token_loss_factor +
         static_cast<Duration>(view_.members.size()) * opts_.hop_timeout;
}

void CliqueMember::leader_tick() {
  if (is_leader()) start_token_round();
}

void CliqueMember::loss_check() {
  if (is_leader()) return;
  if (node_.executor().now() - last_token_ > token_loss_timeout()) {
    EW_DEBUG << node_.self().to_string() << ": token lost, fragmenting";
    become_singleton();
  }
}

void CliqueMember::start_token_round() {
  if (gen_floor_ >= view_.generation && round_ > completed_round_ + 1) {
    // A merge handed us a fragment whose generation outranks our view, and
    // our rounds are dying: members inside that fragment drop our tokens as
    // stale, so complete_round (where the floor is normally folded in)
    // never fires. Re-mint the view above the floor before circulating; the
    // fragment adopts it and the ring resumes. Gated on two consecutive
    // dead rounds so a healthy merge (whose floor is folded in by the very
    // next complete_round) never churns the view from here.
    // (Found by the model checker: a startup race where g1 forms {g1,g2},
    // fragments past our generation when g2 dies, and then wedges the
    // leader's ring forever. See DESIGN.md §14.)
    View v;
    v.generation = std::max(view_.generation, gen_floor_) + 1;
    v.leader = node_.self();
    v.members = view_.members;
    gen_floor_ = 0;
    install_view(std::move(v));
  }
  ++round_;
  obs::registry().counter(obs::names::kCliqueRounds).inc();
  EW_DEBUG << node_.self().to_string() << ": token round " << round_ << " gen "
           << view_.generation << " size " << view_.members.size();
  Token token;
  token.round = round_;
  token.view = view_;
  token.visited = {node_.self()};
  if (view_.members.size() <= 1) {
    complete_round(token);
    return;
  }
  forward_token(std::move(token));
}

Endpoint CliqueMember::next_after(const Endpoint& e,
                                  const std::vector<Endpoint>& members,
                                  const std::set<Endpoint>& skip) const {
  if (members.empty()) return {};
  // Members are sorted; walk the ring starting just after `e`.
  auto start = std::upper_bound(members.begin(), members.end(), e);
  const std::size_t n = members.size();
  const std::size_t first = static_cast<std::size_t>(start - members.begin());
  for (std::size_t step = 0; step < n; ++step) {
    const Endpoint& cand = members[(first + step) % n];
    if (cand == e) continue;
    if (skip.contains(cand)) continue;
    return cand;
  }
  return {};
}

CallOptions CliqueMember::hop_options() const {
  // Clique hops need tighter bounds than the node-wide defaults: an unknown
  // peer is probed after opts_.hop_timeout (not the node's multi-second
  // initial), and a hop never waits past 30s however noisy the forecast.
  // Hops are single-attempt on purpose — a duplicated token would run two
  // rounds at once; failure handling is the suspects list, not a resend.
  CallOptions o;
  o.initial_timeout = opts_.hop_timeout;
  o.max_attempt_timeout = 30 * kSecond;
  return o;
}

void CliqueMember::forward_token(Token token) {
  std::set<Endpoint> skip(token.visited.begin(), token.visited.end());
  skip.insert(token.suspects.begin(), token.suspects.end());
  const Endpoint next = next_after(node_.self(), token.view.members, skip);
  if (!next.valid()) {
    // Ring exhausted: the round is over. Complete locally if we lead it,
    // otherwise return the token to the leader.
    if (token.view.leader == node_.self()) {
      complete_round(token);
      return;
    }
    const Endpoint leader = token.view.leader;
    node_.call(leader, mt_token(), token.serialize(), hop_options(),
               [](Result<Bytes>) {});
    return;
  }
  // Serialize BEFORE the call expression: the continuation captures `token`
  // by move, and argument evaluation order is unspecified.
  Bytes wire = token.serialize();
  node_.call(next, mt_token(), std::move(wire), hop_options(),
             [this, token = std::move(token), next](Result<Bytes> r) mutable {
               if (!running_) return;
               if (r.ok()) return;  // the next holder carries on
               EW_DEBUG << node_.self().to_string() << ": token hop to "
                        << next.to_string() << " failed: " << r.error().to_string();
               token.suspects.push_back(next);
               forward_token(std::move(token));
             });
}

void CliqueMember::on_token(const IncomingMessage& msg, const Responder& resp) {
  // Handlers stay registered after stop() (Node has no unregister); a
  // stopped member — e.g. a parent-tier member whose host lost the child
  // leadership — must refuse traffic so peers suspect it and drop it.
  if (!running_) {
    resp.fail(Err::kRejected, "clique member stopped");
    return;
  }
  auto token = Token::deserialize(msg.packet.payload);
  if (!token) {
    resp.fail(Err::kProtocol, token.error().message);
    return;
  }
  resp.ok();
  ++tokens_seen_;
  obs::registry().counter(obs::names::kCliqueTokens).inc();
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(),
                        obs::SpanKind::kCliqueTokenPass,
                        obs::trace().intern(node_.self().to_string()),
                        static_cast<std::int64_t>(token->round),
                        static_cast<std::int64_t>(token->view.members.size()));
  }
  EW_DEBUG << node_.self().to_string() << ": got token round " << token->round
           << " gen " << token->view.generation << " from "
           << token->view.leader.to_string() << " visited " << token->visited.size();
  if (!token->view.contains(node_.self())) {
    consider_foreign_view(token->view);
    return;
  }
  const bool same_clique = token->view.generation == view_.generation &&
                           token->view.leader == view_.leader;
  if (token->view.newer_than(view_)) {
    install_view(token->view);
  } else if (same_clique) {
    last_token_ = node_.executor().now();
  } else {
    // A stale fragment's token; treat as discovery, do not forward it.
    consider_foreign_view(token->view);
    return;
  }
  if (token->view.leader == node_.self()) {
    // The round came home.
    if (token->round == round_) complete_round(*token);
    return;
  }
  token->visited.push_back(node_.self());
  forward_token(std::move(*token));
}

void CliqueMember::complete_round(const Token& token) {
  completed_round_ = token.round;
  std::set<Endpoint> members(view_.members.begin(), view_.members.end());
  bool changed = false;
  for (const auto& s : token.suspects) {
    if (members.erase(s) > 0) changed = true;
  }
  for (const auto& j : pending_joins_) {
    if (members.insert(j).second) changed = true;
  }
  pending_joins_.clear();
  members.insert(node_.self());
  if (changed || gen_floor_ >= view_.generation) {
    View v;
    v.generation = std::max(view_.generation, gen_floor_) + 1;
    v.leader = node_.self();
    v.members.assign(members.begin(), members.end());
    gen_floor_ = 0;
    install_view(std::move(v));
  } else {
    last_token_ = node_.executor().now();
  }
}

void CliqueMember::on_join(const IncomingMessage& msg, const Responder& resp) {
  if (!running_) {
    resp.fail(Err::kRejected, "clique member stopped");
    return;
  }
  auto joiner = Endpoint{};
  {
    Reader r(msg.packet.payload);
    auto e = read_endpoint(r);
    if (!e) {
      resp.fail(Err::kProtocol, e.error().message);
      return;
    }
    joiner = std::move(*e);
  }
  ever_seen_.insert(joiner);
  if (is_leader()) {
    if (!view_.contains(joiner)) pending_joins_.push_back(joiner);
    resp.ok(view_.serialize());
    return;
  }
  // Not the leader: tell the joiner who is (it retries there).
  resp.ok(view_.serialize());
}

void CliqueMember::on_probe(const IncomingMessage& msg, const Responder& resp) {
  if (!running_) {
    resp.fail(Err::kRejected, "clique member stopped");
    return;
  }
  auto foreign = View::deserialize(msg.packet.payload);
  if (!foreign) {
    resp.fail(Err::kProtocol, foreign.error().message);
    return;
  }
  resp.ok(view_.serialize());
  consider_foreign_view(*foreign);
}

void CliqueMember::on_merge(const IncomingMessage& msg, const Responder& resp) {
  if (!running_) {
    resp.fail(Err::kRejected, "clique member stopped");
    return;
  }
  auto foreign = View::deserialize(msg.packet.payload);
  if (!foreign) {
    resp.fail(Err::kProtocol, foreign.error().message);
    return;
  }
  resp.ok(view_.serialize());
  if (foreign->leader == view_.leader) return;  // already merged
  if (!is_leader()) {
    // Relay to our leader.
    node_.call(view_.leader, mt_merge(), foreign->serialize(),
               hop_options(), [](Result<Bytes>) {});
    return;
  }
  if (node_.self() < foreign->leader) {
    // We absorb them: admit their members; the next round's generation must
    // exceed theirs so the merged view wins adoption everywhere.
    gen_floor_ = std::max(gen_floor_, foreign->generation);
    for (const auto& m : foreign->members) {
      ever_seen_.insert(m);
      if (!view_.contains(m) &&
          std::find(pending_joins_.begin(), pending_joins_.end(), m) ==
              pending_joins_.end()) {
        pending_joins_.push_back(m);
      }
    }
  } else {
    // They are the senior clique: ask to be absorbed.
    consider_foreign_view(*foreign);
  }
}

void CliqueMember::consider_foreign_view(const View& foreign) {
  for (const auto& m : foreign.members) {
    if (m != node_.self()) ever_seen_.insert(m);
  }
  if (foreign.leader == view_.leader) {
    if (foreign.newer_than(view_)) {
      install_view(foreign);
    } else if (view_.newer_than(foreign) && foreign.leader != node_.self()) {
      // A stale fragment of our own clique — typically our leader, freshly
      // crash-restarted as a generation-1 singleton. Neither side's merge
      // path fires (the leaders are equal), so left alone the ring only
      // heals after the token-loss timeout fragments everyone. Push our
      // newer view at the stale leader; its same-leader branch adopts it
      // and token rounds resume at the surviving generation.
      node_.call(foreign.leader, mt_probe(), view_.serialize(),
                 hop_options(), [this](Result<Bytes> r) {
                   if (!running_ || !r.ok()) return;
                   auto v = View::deserialize(*r);
                   if (v) consider_foreign_view(*v);
                 });
    }
    return;
  }
  if (merging_) return;  // one merge in flight is plenty
  if (foreign.leader < view_.leader) {
    // The foreign clique is senior: hand our whole clique over. Any member
    // may initiate; the foreign leader dedups.
    merging_ = true;
    const Endpoint target = foreign.leader;
    node_.call(target, mt_merge(), view_.serialize(), hop_options(),
               [this](Result<Bytes> r) {
                 if (!running_) return;
                 merging_ = false;
                 if (!r.ok()) return;
                 auto v = View::deserialize(*r);
                 if (v && v->newer_than(view_) && v->contains(node_.self())) {
                   install_view(std::move(*v));
                 }
               });
  } else {
    // We are senior: absorb them (leader-side path of on_merge).
    if (is_leader()) {
      gen_floor_ = std::max(gen_floor_, foreign.generation);
      for (const auto& m : foreign.members) {
        if (!view_.contains(m) &&
            std::find(pending_joins_.begin(), pending_joins_.end(), m) ==
                pending_joins_.end()) {
          pending_joins_.push_back(m);
        }
      }
    } else {
      node_.call(view_.leader, mt_merge(), foreign.serialize(),
                 hop_options(), [](Result<Bytes>) {});
    }
  }
}

void CliqueMember::probe_tick() {
  // Deterministic round-robin over everyone we might merge with.
  std::vector<Endpoint> targets;
  for (const auto& e : well_known_) {
    if (e != node_.self() && !view_.contains(e)) targets.push_back(e);
  }
  for (const auto& e : ever_seen_) {
    if (e != node_.self() && !view_.contains(e) &&
        std::find(targets.begin(), targets.end(), e) == targets.end()) {
      targets.push_back(e);
    }
  }
  if (targets.empty()) return;
  const Endpoint target = targets[probe_index_++ % targets.size()];
  // View exchange is idempotent (merge of sorted member sets), so probes
  // may retry within the hop bounds.
  CallOptions probe = hop_options();
  probe.retry = RetryPolicy::standard(2);
  node_.call(target, mt_probe(), view_.serialize(), std::move(probe),
             [this](Result<Bytes> r) {
               if (!running_) return;
               if (!r.ok()) return;
               auto v = View::deserialize(*r);
               if (v) consider_foreign_view(*v);
             });
}

}  // namespace ew::gossip
