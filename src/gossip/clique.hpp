// The NWS clique protocol (paper Section 2.3).
//
// "Within the Gossip pool, we used the NWS clique protocol (a token-passing
// protocol based on leader-election) to manage network partitioning and
// Gossip failure. The clique protocol allows a clique of processes to
// dynamically partition itself into subcliques (due to network or host
// failure) and then merge when conditions permit."
//
// Implementation: members hold a View (generation, leader, member list).
// The leader circulates a Token around the sorted member ring; each member
// forwards it to the next reachable member, recording unreachable ones as
// suspects. When the token returns, the leader drops suspects, admits
// pending joiners, and bumps the generation. A member that stops seeing
// tokens concludes it is partitioned from its leader and falls back to a
// singleton clique; periodic probes of well-known and previously-seen
// members then drive merges: whenever two different cliques discover each
// other, the one whose leader is lexicographically larger joins the other.
// Views are adopted by (generation, leader) order, so every connected
// component converges on the clique led by its smallest reachable member.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "gossip/protocol.hpp"
#include "net/node.hpp"

namespace ew::gossip {

class CliqueMember {
 public:
  struct Options {
    Duration token_period = 5 * kSecond;       // leader circulation interval
    Duration token_loss_factor = 6;            // periods without a token => fragment
    Duration probe_period = 15 * kSecond;      // out-of-clique probe interval
    Duration hop_timeout = 2 * kSecond;        // fallback before forecasts warm up
    // First of four consecutive message types (token/join/probe/merge). The
    // parent tier of a hierarchical gossip pool runs a second CliqueMember on
    // the same Node at kToken + kParentTierOffset; the offset keeps the two
    // protocol instances from eating each other's messages.
    MsgType msg_base = msgtype::kToken;
  };

  using ViewListener = std::function<void(const View&)>;

  /// `node` must outlive the member. `well_known` are stable addresses
  /// probed forever (the paper stationed Gossips "at well-known addresses
  /// around the country"); they need not be alive.
  CliqueMember(Node& node, std::vector<Endpoint> well_known, Options opts);
  CliqueMember(Node& node, std::vector<Endpoint> well_known)
      : CliqueMember(node, std::move(well_known), Options{}) {}

  /// Register handlers and start timers. The member begins as a singleton
  /// clique of itself and merges outward via probes.
  void start();
  void stop();

  [[nodiscard]] const View& view() const { return view_; }
  [[nodiscard]] bool is_leader() const { return view_.leader == node_.self(); }
  void on_view_change(ViewListener fn) { listeners_.push_back(std::move(fn)); }

  /// Diagnostics.
  [[nodiscard]] std::uint64_t tokens_seen() const { return tokens_seen_; }
  [[nodiscard]] std::uint64_t fragmentations() const { return fragmentations_; }

 private:
  void install_view(View v);
  void become_singleton();
  void announce_join();
  void note_view_change();
  void schedule_leader_tick();
  void schedule_probe_tick();
  void schedule_loss_check();
  void leader_tick();
  void probe_tick();
  void loss_check();
  void start_token_round();
  void forward_token(Token token);
  void on_token(const IncomingMessage& msg, const Responder& resp);
  void on_join(const IncomingMessage& msg, const Responder& resp);
  void on_probe(const IncomingMessage& msg, const Responder& resp);
  void on_merge(const IncomingMessage& msg, const Responder& resp);
  void complete_round(const Token& token);
  void consider_foreign_view(const View& foreign);
  [[nodiscard]] Endpoint next_after(const Endpoint& e,
                                    const std::vector<Endpoint>& members,
                                    const std::set<Endpoint>& skip) const;
  [[nodiscard]] CallOptions hop_options() const;
  [[nodiscard]] Duration token_loss_timeout() const;
  [[nodiscard]] MsgType mt_token() const { return opts_.msg_base; }
  [[nodiscard]] MsgType mt_join() const { return static_cast<MsgType>(opts_.msg_base + 1); }
  [[nodiscard]] MsgType mt_probe() const { return static_cast<MsgType>(opts_.msg_base + 2); }
  [[nodiscard]] MsgType mt_merge() const { return static_cast<MsgType>(opts_.msg_base + 3); }

  Node& node_;
  std::vector<Endpoint> well_known_;
  Options opts_;
  View view_;
  std::uint64_t round_ = 0;
  std::uint64_t completed_round_ = 0;  // last round whose token came home
  std::vector<Endpoint> pending_joins_;
  std::uint64_t gen_floor_ = 0;  // merged-in cliques' generation high-water
  std::size_t probe_index_ = 0;
  TimePoint last_token_ = 0;
  bool running_ = false;
  bool merging_ = false;
  std::uint64_t tokens_seen_ = 0;
  std::uint64_t fragmentations_ = 0;
  std::set<Endpoint> ever_seen_;  // probe targets beyond the well-known list
  std::vector<ViewListener> listeners_;
  TimerId leader_timer_ = kInvalidTimer;
  TimerId probe_timer_ = kInvalidTimer;
  TimerId loss_timer_ = kInvalidTimer;
};

}  // namespace ew::gossip
