// SyncClient: an application component's participation in state exchange.
//
// Paper Section 2.3: "The application component must register a contact
// address, a unique message type, and a function that allows a Gossip to
// compare the freshness of two different messages ... All application
// components wishing to use Gossip service must also export a state-update
// method for each message type they wish to synchronize. Once registered, an
// application component periodically receives a request from a Gossip
// process to send a fresh copy of its current state."
//
// expose() supplies the provider (current state) and the state-update method
// (applier) for one message type; start() registers with one of the
// well-known Gossips (failing over down the list) and renews the
// registration periodically as a lease.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "gossip/state.hpp"
#include "net/node.hpp"

namespace ew::gossip {

class SyncClient {
 public:
  struct StateHandlers {
    std::function<Bytes()> provider;            // current state snapshot
    std::function<void(const Bytes&)> applier;  // the state-update method
  };
  struct Options {
    Duration reregister_period = 60 * kSecond;  // lease renewal
    Duration retry_delay = 5 * kSecond;         // after a failed registration
    Duration call_timeout = 5 * kSecond;
  };

  SyncClient(Node& node, const ComparatorRegistry& comparators,
             std::vector<Endpoint> gossips, Options opts);
  SyncClient(Node& node, const ComparatorRegistry& comparators,
             std::vector<Endpoint> gossips)
      : SyncClient(node, comparators, std::move(gossips), Options{}) {}

  /// Must be called before start(). One pair of handlers per message type.
  void expose(MsgType type, StateHandlers handlers);

  void start();
  void stop();

  [[nodiscard]] bool registered() const { return registered_; }
  /// The gossip we most recently registered with successfully.
  [[nodiscard]] const Endpoint& current_gossip() const { return current_gossip_; }
  [[nodiscard]] std::uint64_t updates_applied() const { return updates_applied_; }
  /// Polls answered "fresh" with no content because every exposed type
  /// already matched the gossip's digest (also `gossip.poll.cache_hits`).
  [[nodiscard]] std::uint64_t poll_cache_hits() const { return poll_cache_hits_; }

 private:
  void register_with(std::size_t index);
  void schedule_renewal();
  void on_get_state(const IncomingMessage& msg, const Responder& resp);
  void on_get_state_batch(const IncomingMessage& msg, const Responder& resp);
  void on_state_update(const IncomingMessage& msg, const Responder& resp);

  Node& node_;
  const ComparatorRegistry& comparators_;
  std::vector<Endpoint> gossips_;
  Options opts_;
  std::map<MsgType, StateHandlers> handlers_;
  bool running_ = false;
  bool registered_ = false;
  Endpoint current_gossip_;
  std::uint64_t updates_applied_ = 0;
  std::uint64_t poll_cache_hits_ = 0;
  TimerId renew_timer_ = kInvalidTimer;
};

}  // namespace ew::gossip
